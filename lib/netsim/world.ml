type datagram = {
  src : Ip.t;
  sport : int;
  dst : Ip.t;
  dport : int;
  payload : string;
}

type stats = {
  mutable delivered : int;
  mutable dropped : int;  (* total, every reason below *)
  mutable dropped_fault : int;
  mutable dropped_link : int;
  mutable no_route : int;
  mutable no_handler : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

(* Scheduler state lives in explicit shards: each shard owns an event
   heap (with its RNG) and its own stats record, so fleet-scale worlds
   can spread LANs over several heaps.  Cross-shard traffic is batched
   through per-shard inboxes and flushed at epoch boundaries; with one
   shard (the default) nothing changes — [run] delegates straight to
   [Sim.run] on the lone heap, bit-identical to the unsharded world
   under seed replay. *)
type t = {
  shards : shard array;  (* at least one; shard 0 carries the world seed *)
  batch : int;  (* epoch window, µs: bounds cross-shard delivery skew *)
  mutable lans : lan list;
  mutable hosts : host list;
  mutable next_id : int;  (* host/lan id source (policy and visited keys) *)
  mutable default_policy : Faults.policy;
  link_policies : (int * int, Faults.policy) Hashtbl.t;  (* host-id pair *)
  lan_policies : (int, Faults.policy) Hashtbl.t;  (* sender's LAN id *)
  mutable severed : (int * int) list;  (* partitioned LAN-id pairs *)
  mutable trace : Telemetry.Trace.t option;
  mutable barrier : (int * (int -> unit)) option;  (* (every_us, hook) *)
}

and shard = {
  sindex : int;
  ssim : Sim.t;
  sstats : stats;
  sinbox : pending Queue.t;  (* datagram copies from other shards *)
}

and pending = { p_time : int; p_dgram : datagram; p_target : host }

and lan = {
  lid : int;
  lname : string;
  mutable members : host list;
  mutable uplink : lan option;
  mutable lshard : int;
}

and host = {
  hid : int;
  hname : string;
  mutable hip : Ip.t option;
  mutable hdns : Ip.t option;
  mutable hlan : lan option;
  mutable handlers : (int * (ctx -> datagram -> unit)) list;
}

and ctx = { world : t; self : host }

let zero_stats () =
  {
    delivered = 0;
    dropped = 0;
    dropped_fault = 0;
    dropped_link = 0;
    no_route = 0;
    no_handler = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0;
  }

let create ?(seed = 7) ?(shards = 1) ?(batch = 100) () =
  if shards < 1 then invalid_arg "World.create: shards must be >= 1";
  if batch < 0 then invalid_arg "World.create: batch must be >= 0";
  {
    shards =
      Array.init shards (fun i ->
          {
            sindex = i;
            (* Shard 0 carries the world seed unchanged so a one-shard
               world replays the unsharded one bit-for-bit; the others
               derive distinct streams from it. *)
            ssim = Sim.create ~seed:(seed + (7919 * i)) ();
            sstats = zero_stats ();
            sinbox = Queue.create ();
          });
    batch;
    lans = [];
    hosts = [];
    next_id = 0;
    default_policy = Faults.default;
    link_policies = Hashtbl.create 8;
    lan_policies = Hashtbl.create 8;
    severed = [];
    trace = None;
    barrier = None;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let sim t = t.shards.(0).ssim
let shard_count t = Array.length t.shards

let shard_sim t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "World.shard_sim: no such shard";
  t.shards.(i).ssim

let shard_stats t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "World.shard_stats: no such shard";
  t.shards.(i).sstats

let merge_stats acc s =
  acc.delivered <- acc.delivered + s.delivered;
  acc.dropped <- acc.dropped + s.dropped;
  acc.dropped_fault <- acc.dropped_fault + s.dropped_fault;
  acc.dropped_link <- acc.dropped_link + s.dropped_link;
  acc.no_route <- acc.no_route + s.no_route;
  acc.no_handler <- acc.no_handler + s.no_handler;
  acc.corrupted <- acc.corrupted + s.corrupted;
  acc.duplicated <- acc.duplicated + s.duplicated;
  acc.reordered <- acc.reordered + s.reordered

(* Single shard: hand out the live record (existing callers hold on to
   it across runs).  Sharded: a fresh merged snapshot. *)
let stats t =
  if Array.length t.shards = 1 then t.shards.(0).sstats
  else begin
    let acc = zero_stats () in
    Array.iter (fun sh -> merge_stats acc sh.sstats) t.shards;
    acc
  end

let shard_of_host t h =
  match h.hlan with
  | Some lan when lan.lshard < Array.length t.shards -> t.shards.(lan.lshard)
  | _ -> t.shards.(0)

let set_trace t tr = t.trace <- tr
let trace t = t.trace

(* Every net event first advances the trace's shared clock to the acting
   shard's sim-now, so layers without a clock of their own (daemons,
   supervisor) timestamp against a current µs.  [Trace.set_now] is
   monotonic, so out-of-order shard clocks cannot drag it backward. *)
let trace_event t sh name args =
  match t.trace with
  | None -> ()
  | Some tr ->
      Telemetry.Trace.set_now tr (Sim.now sh.ssim);
      Telemetry.Trace.emit tr ~cat:"net" ~track:"net" name ~args

let dgram_args dgram =
  [
    ("sport", Telemetry.Trace.I dgram.sport);
    ("dport", Telemetry.Trace.I dgram.dport);
    ("bytes", Telemetry.Trace.I (String.length dgram.payload));
  ]

(* --- impairment policies ------------------------------------------------ *)

let set_default_policy t p = t.default_policy <- Faults.validate p
let default_policy t = t.default_policy

(* Compat shim for the pre-fault-layer API: a world-wide drop knob.  It
   now applies to broadcast traffic too (the seed implementation only
   consulted it on unicast — DHCP/discovery broadcasts sailed through). *)
let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "World.set_loss: probability";
  t.default_policy <- { t.default_policy with Faults.drop = p }

let link_key a b = if a.hid <= b.hid then (a.hid, b.hid) else (b.hid, a.hid)

let set_link_policy t a b p =
  Hashtbl.replace t.link_policies (link_key a b) (Faults.validate p)

let clear_link_policy t a b = Hashtbl.remove t.link_policies (link_key a b)

let set_lan_policy t lan p =
  Hashtbl.replace t.lan_policies lan.lid (Faults.validate p)

let clear_lan_policy t lan = Hashtbl.remove t.lan_policies lan.lid

(* Most specific wins: host pair, then the sender's LAN, then the world. *)
let policy_for t ~src ~dst =
  match Hashtbl.find_opt t.link_policies (link_key src dst) with
  | Some p -> p
  | None -> (
      match src.hlan with
      | None -> t.default_policy
      | Some lan -> (
          match Hashtbl.find_opt t.lan_policies lan.lid with
          | Some p -> p
          | None -> t.default_policy))

(* --- topology ----------------------------------------------------------- *)

let add_lan ?(shard = 0) t ~name =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "World.add_lan: no such shard";
  let lan =
    { lid = fresh_id t; lname = name; members = []; uplink = None;
      lshard = shard }
  in
  t.lans <- lan :: t.lans;
  lan

let lan_name lan = lan.lname
let set_uplink lan up = lan.uplink <- up

let set_lan_shard t lan i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "World.set_lan_shard: no such shard";
  lan.lshard <- i

let lan_shard lan = lan.lshard
let host_shard t h = (shard_of_host t h).sindex

let add_host t ~name =
  let host =
    { hid = fresh_id t; hname = name; hip = None; hdns = None; hlan = None;
      handlers = [] }
  in
  t.hosts <- host :: t.hosts;
  host

let host_name h = h.hname
let host_ip h = h.hip
let set_host_ip h ip = h.hip <- ip
let host_dns h = h.hdns
let set_host_dns h dns = h.hdns <- dns

let detach h =
  (match h.hlan with
  | Some lan -> lan.members <- List.filter (fun m -> m != h) lan.members
  | None -> ());
  h.hlan <- None

let attach h lan =
  detach h;
  lan.members <- h :: lan.members;
  h.hlan <- Some lan

let lan_of h = h.hlan
let hosts_of lan = List.rev lan.members

let on_udp h ~port handler =
  h.handlers <- (port, handler) :: List.remove_assoc port h.handlers

(* --- partitions --------------------------------------------------------- *)

let sever_key a b = if a.lid <= b.lid then (a.lid, b.lid) else (b.lid, a.lid)

let partition t a b =
  let key = sever_key a b in
  if not (List.mem key t.severed) then t.severed <- key :: t.severed

let heal t a b = t.severed <- List.filter (( <> ) (sever_key a b)) t.severed
let partitioned t a b = List.mem (sever_key a b) t.severed

let edge_severed t a b = List.mem (sever_key a b) t.severed

(* Unicast resolution: breadth-first over the uplink graph treated as
   undirected (replies must route back down to edge LANs, as NAT/conntrack
   state provides in the real network).  The sender's own LAN is tried
   first; severed (partitioned) edges are not crossed.  A queue plus a
   visited table keeps each datagram O(lans + edges) — the seed's
   [rest @ neighbours l] / [List.memq l visited] pair was O(n²). *)
let resolve_unicast t lan dst =
  let neighbours l =
    (match l.uplink with Some up -> [ up ] | None -> [])
    @ List.filter
        (fun other ->
          match other.uplink with Some up -> up == l | None -> false)
        t.lans
  in
  let visited = Hashtbl.create 16 in
  let frontier = Queue.create () in
  Hashtbl.replace visited lan.lid ();
  Queue.push lan frontier;
  let rec bfs () =
    if Queue.is_empty frontier then None
    else
      let l = Queue.pop frontier in
      match List.find_opt (fun h -> h.hip = Some dst) l.members with
      | Some h -> Some h
      | None ->
          List.iter
            (fun n ->
              if (not (Hashtbl.mem visited n.lid)) && not (edge_severed t l n)
              then begin
                Hashtbl.replace visited n.lid ();
                Queue.push n frontier
              end)
            (neighbours l);
          bfs ()
  in
  bfs ()

(* --- delivery ----------------------------------------------------------- *)

(* [sh] is the receiver's shard: its heap fired the delivery event, its
   stats absorb the outcome. *)
let deliver t sh dgram target =
  match List.assoc_opt dgram.dport target.handlers with
  | None ->
      sh.sstats.dropped <- sh.sstats.dropped + 1;
      sh.sstats.no_handler <- sh.sstats.no_handler + 1;
      trace_event t sh "rx-drop"
        (("host", Telemetry.Trace.S target.hname)
        :: ("reason", Telemetry.Trace.S "no-handler")
        :: dgram_args dgram)
  | Some handler ->
      sh.sstats.delivered <- sh.sstats.delivered + 1;
      trace_event t sh "rx"
        (("host", Telemetry.Trace.S target.hname) :: dgram_args dgram);
      handler { world = t; self = target } dgram

(* Push one datagram across the [src -> target] link, applying that
   link's impairment policy.  The sender's shard draws the fault plan
   (its RNG, its clock); every surviving copy is either scheduled on the
   receiver's heap directly (same shard) or queued in the receiver
   shard's inbox for the next epoch flush. *)
let transmit t dgram ~src target =
  let ssrc = shard_of_host t src in
  let sdst = shard_of_host t target in
  let policy = policy_for t ~src ~dst:target in
  let plan =
    Faults.apply (Sim.rng ssrc.ssim) policy ~now:(Sim.now ssrc.ssim)
      ~payload:dgram.payload
  in
  let s = ssrc.sstats in
  let link_args () =
    ("from", Telemetry.Trace.S src.hname)
    :: ("to", Telemetry.Trace.S target.hname)
    :: dgram_args dgram
  in
  match plan.Faults.fate with
  | Faults.Drop_link ->
      s.dropped <- s.dropped + 1;
      s.dropped_link <- s.dropped_link + 1;
      trace_event t ssrc "drop"
        (("reason", Telemetry.Trace.S "link") :: link_args ())
  | Faults.Drop_fault ->
      s.dropped <- s.dropped + 1;
      s.dropped_fault <- s.dropped_fault + 1;
      trace_event t ssrc "drop"
        (("reason", Telemetry.Trace.S "fault") :: link_args ())
  | Faults.Pass ->
      if plan.Faults.corrupted then s.corrupted <- s.corrupted + 1;
      if plan.Faults.duplicated then s.duplicated <- s.duplicated + 1;
      if plan.Faults.reordered then s.reordered <- s.reordered + 1;
      (match t.trace with
      | None -> ()
      | Some _ ->
          let flags =
            [
              ("copies", Telemetry.Trace.I (List.length plan.Faults.copies));
              ("corrupted", Telemetry.Trace.B plan.Faults.corrupted);
              ("duplicated", Telemetry.Trace.B plan.Faults.duplicated);
              ("reordered", Telemetry.Trace.B plan.Faults.reordered);
            ]
          in
          trace_event t ssrc "tx" (link_args () @ flags));
      List.iter
        (fun (delay, payload) ->
          let dgram = { dgram with payload } in
          if ssrc == sdst then
            Sim.schedule sdst.ssim ~delay (fun _ -> deliver t sdst dgram target)
          else
            Queue.push
              {
                p_time = Sim.now ssrc.ssim + delay;
                p_dgram = dgram;
                p_target = target;
              }
              sdst.sinbox)
        plan.Faults.copies

let send t ~from ?(sport = 0) ~dst ~dport payload =
  let ssrc = shard_of_host t from in
  let s = ssrc.sstats in
  match from.hlan with
  | None ->
      s.dropped <- s.dropped + 1;
      s.no_route <- s.no_route + 1;
      trace_event t ssrc "drop"
        [
          ("reason", Telemetry.Trace.S "no-lan");
          ("from", Telemetry.Trace.S from.hname);
        ]
  | Some lan -> (
      let src = Option.value from.hip ~default:0 in
      let dgram = { src; sport; dst; dport; payload } in
      if dst = Ip.broadcast then
        List.iter
          (fun h -> if h != from then transmit t dgram ~src:from h)
          lan.members
      else
        match resolve_unicast t lan dst with
        | Some target -> transmit t dgram ~src:from target
        | None ->
            s.dropped <- s.dropped + 1;
            s.no_route <- s.no_route + 1;
            trace_event t ssrc "drop"
              (("reason", Telemetry.Trace.S "no-route")
              :: ("from", Telemetry.Trace.S from.hname)
              :: dgram_args dgram))

(* Move inbox entries onto the shard's own heap.  A copy whose stamped
   time already passed on the receiver's clock is delivered at [now] —
   cross-shard skew is bounded by the epoch window ([batch]). *)
let flush_inbox t sh =
  while not (Queue.is_empty sh.sinbox) do
    let p = Queue.pop sh.sinbox in
    let delay = max 0 (p.p_time - Sim.now sh.ssim) in
    Sim.schedule sh.ssim ~delay (fun _ -> deliver t sh p.p_dgram p.p_target)
  done

(* Conservative epoch loop over the shard heaps: flush every inbox, find
   the globally earliest pending event, run all shards up to that time
   plus the batch window, repeat.  One shard short-circuits to a plain
   [Sim.run] — bit-identical to the unsharded world. *)
let run_span ?until t =
    if Array.length t.shards = 1 then Sim.run ?until t.shards.(0).ssim
    else begin
      let processed = ref 0 in
      let progress = ref true in
      while !progress do
        progress := false;
        Array.iter (flush_inbox t) t.shards;
        let next =
          Array.fold_left
            (fun acc sh ->
              match Sim.next_time sh.ssim with
              | None -> acc
              | Some tm -> (
                  match acc with None -> Some tm | Some a -> Some (min a tm)))
            None t.shards
        in
        match next with
        | None -> ()
        | Some tmin ->
            let beyond =
              match until with Some u -> tmin > u | None -> false
            in
            if not beyond then begin
              let horizon = tmin + t.batch in
              let horizon =
                match until with Some u -> min horizon u | None -> horizon
              in
              Array.iter
                (fun sh ->
                  processed := !processed + Sim.run ~until:horizon sh.ssim)
                t.shards;
              progress := true
            end
      done;
      (* Advance every shard clock to the caller's horizon (no events
         remain at or before it). *)
      (match until with
      | Some u ->
          Array.iter (fun sh -> ignore (Sim.run ~until:u sh.ssim)) t.shards
      | None -> ());
      !processed
    end

let now t =
  Array.fold_left (fun acc sh -> max acc (Sim.now sh.ssim)) 0 t.shards

let set_barrier t ~every_us hook =
  if every_us <= 0 then invalid_arg "World.set_barrier: every_us must be positive";
  t.barrier <- Some (every_us, hook)

let clear_barrier t = t.barrier <- None

let has_pending t =
  Array.exists (fun sh -> Sim.pending sh.ssim > 0) t.shards

(* With a barrier installed, [run] is an outer loop over barrier times
   b = k·every_us: every shard is drained through b (inclusive — see
   [Sim.run]) before the hook observes b.  All events at or before b
   have executed regardless of shard count, so counter-style state seen
   by the hook is an order-independent sum — this is what makes a
   monitor scrape shard-count deterministic.  Without [until], barriers
   keep firing while any shard still has pending work. *)
let run ?until t =
  let processed =
    match t.barrier with
    | None -> run_span ?until t
    | Some (every, hook) ->
        let processed = ref 0 in
        let next = ref (((now t / every) + 1) * every) in
        let continue () =
          match until with
          | Some u -> !next <= u
          | None -> has_pending t
        in
        while continue () do
          processed := !processed + run_span ~until:!next t;
          hook !next;
          next := !next + every
        done;
        (match until with
        | Some u -> processed := !processed + run_span ~until:u t
        | None -> processed := !processed + run_span t);
        !processed
  in
  (* Feed the telemetry clock at the end of the run too: with the
     clock-lag fix, an early-drained [run ~until] still advances sim
     time, and the trace's µs should agree. *)
  (match t.trace with
  | None -> ()
  | Some tr -> Telemetry.Trace.set_now tr (Sim.now t.shards.(0).ssim));
  processed

let register_metrics ?(per_shard = true) t reg =
  (* Single-shard worlds keep the seed exposition byte-for-byte; sharded
     worlds add one ["shard"]-labelled series per shard after each
     unlabelled rollup, registered in shard-index order so the
     registry's (name, registration-seq) exposition order is stable.
     Probes read the live stats records, so rollup = sum of shards holds
     at every scrape.  [~per_shard:false] suppresses the labelled
     breakdown: the registry then exposes the same series set for any
     shard count — what the monitor's cross-shard-count byte-identity
     contract needs. *)
  let sharded = per_shard && Array.length t.shards > 1 in
  let c name help f =
    Telemetry.Metrics.probe reg ~help ~kind:`Counter name (fun () ->
        float_of_int (f (stats t)));
    if sharded then
      Array.iter
        (fun sh ->
          Telemetry.Metrics.probe reg ~help ~kind:`Counter
            ~labels:[ ("shard", string_of_int sh.sindex) ] name (fun () ->
              float_of_int (f sh.sstats)))
        t.shards
  in
  c "netsim_delivered_total" "datagrams delivered to a handler" (fun s ->
      s.delivered);
  c "netsim_dropped_total" "datagrams dropped, all causes" (fun s -> s.dropped);
  c "netsim_dropped_fault_total" "datagrams dropped by fault injection"
    (fun s -> s.dropped_fault);
  c "netsim_dropped_link_total" "datagrams dropped by link loss" (fun s ->
      s.dropped_link);
  c "netsim_no_route_total" "datagrams with no route to the destination"
    (fun s -> s.no_route);
  c "netsim_no_handler_total" "datagrams with no listener on the port"
    (fun s -> s.no_handler);
  c "netsim_corrupted_total" "datagrams corrupted in flight" (fun s ->
      s.corrupted);
  c "netsim_duplicated_total" "datagrams duplicated in flight" (fun s ->
      s.duplicated);
  c "netsim_reordered_total" "datagrams reordered in flight" (fun s ->
      s.reordered);
  Telemetry.Metrics.probe reg ~help:"simulated clock, microseconds"
    ~kind:`Gauge "netsim_sim_now_us" (fun () ->
      float_of_int (Sim.now t.shards.(0).ssim));
  if sharded then
    Array.iter
      (fun sh ->
        Telemetry.Metrics.probe reg ~help:"simulated clock, microseconds"
          ~kind:`Gauge
          ~labels:[ ("shard", string_of_int sh.sindex) ] "netsim_sim_now_us"
          (fun () -> float_of_int (Sim.now sh.ssim)))
      t.shards
