(** The network world: LANs, hosts, and UDP datagram delivery over the
    {!Sim} event clock.

    Topology is deliberately simple — broadcast domains (LANs) with an
    optional uplink chain (home LAN → ISP/Internet) — because that is all
    the paper's §III-D scenario needs: a victim that can be lured from
    its legitimate LAN onto the Pineapple's LAN, where the attacker
    controls DHCP and DNS.

    Every datagram crosses a {!Faults.policy}: a deterministic
    impairment model (drop, duplicate, corrupt, reorder, latency
    jitter, link flaps) resolved per link — host pair first, then the
    sender's LAN, then the world default.  LAN pairs can additionally be
    {!partition}ed, which severs routing between them. *)

type t
type host
type lan

type datagram = {
  src : Ip.t;
  sport : int;
  dst : Ip.t;
  dport : int;
  payload : string;
}

type ctx = { world : t; self : host }
(** Handed to every packet handler. *)

type stats = {
  mutable delivered : int;
  mutable dropped : int;  (** total drops, every reason below included *)
  mutable dropped_fault : int;  (** drop probability fired *)
  mutable dropped_link : int;  (** link flapped down *)
  mutable no_route : int;  (** unroutable destination (or detached sender) *)
  mutable no_handler : int;  (** delivered to a port nobody listens on *)
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

val create : ?seed:int -> ?shards:int -> ?batch:int -> unit -> t
(** [shards] (default 1) splits scheduler state — event heap, RNG,
    per-reason stats — into that many explicit shard records; assign
    LANs to shards with {!set_lan_shard}.  [batch] (default 100 µs) is
    the epoch window of the sharded run loop: cross-shard datagrams are
    batched through per-shard inboxes and may be delivered up to one
    window late on the receiver's clock.  With one shard, behaviour is
    bit-identical to the unsharded world under seed replay (shard 0
    always carries [seed] unchanged). *)

val sim : t -> Sim.t
(** Shard 0's simulator (the only one unless [~shards] was given). *)

val stats : t -> stats
(** Single-shard worlds return the live record; sharded worlds return a
    fresh snapshot merged over all shards. *)

(** {2 Shards} *)

val shard_count : t -> int

val shard_sim : t -> int -> Sim.t
(** Shard [i]'s simulator.  Raises [Invalid_argument] on a bad index. *)

val shard_stats : t -> int -> stats
(** Shard [i]'s live stats record (unmerged). *)

val merge_stats : stats -> stats -> unit
(** [merge_stats acc s] adds [s]'s counters into [acc]. *)

val set_trace : t -> Telemetry.Trace.t option -> unit
(** Attach (or detach with [None]) a telemetry sink.  With a sink
    attached, every per-packet fate — transmit, deliver, and each drop
    cause — emits a ["net"]-category event stamped with sim time; each
    emission also advances the trace's shared clock to [Sim.now], so
    downstream layers (daemons, supervisor) inherit a current µs. *)

val trace : t -> Telemetry.Trace.t option

val register_metrics : ?per_shard:bool -> t -> Telemetry.Metrics.t -> unit
(** Register pull-probes over this world's {!stats} counters
    ([netsim_*_total]) and the sim clock into the registry.  Sharded
    worlds additionally expose every series once per shard with a
    ["shard"] label (value = shard index, registered in index order so
    exposition is deterministic); the unlabelled series stays the merged
    rollup, equal to the sum over shards.  Single-shard worlds expose
    exactly the unlabelled seed output.  [~per_shard:false] (default
    [true]) suppresses the labelled breakdown, making the registered
    series set independent of the shard count — required for the
    monitor's cross-shard-count byte-identity contract. *)

(** {2 Impairment policies} *)

val set_default_policy : t -> Faults.policy -> unit
(** World-wide fallback policy (validated; default {!Faults.default}). *)

val default_policy : t -> Faults.policy

val set_link_policy : t -> host -> host -> Faults.policy -> unit
(** Attach a policy to the (symmetric) host pair; overrides LAN and
    world policies for traffic between the two. *)

val clear_link_policy : t -> host -> host -> unit

val set_lan_policy : t -> lan -> Faults.policy -> unit
(** Policy for traffic {e originating} from hosts attached to that LAN
    (when no host-pair policy matches). *)

val clear_lan_policy : t -> lan -> unit

val set_loss : t -> float -> unit
(** Compatibility shim: sets the world default policy's drop
    probability.  Unlike the seed implementation it now applies to
    broadcast datagrams too, so DHCP/discovery traffic experiences loss.
    Drops count in {!stats}. *)

(** {2 Topology} *)

val add_lan : ?shard:int -> t -> name:string -> lan
(** [shard] (default 0) places the LAN directly on that scheduler shard
    — the fleet-placement shorthand for [add_lan] + {!set_lan_shard}.
    Raises [Invalid_argument] on a bad index. *)

val lan_name : lan -> string
val set_uplink : lan -> lan option -> unit
(** Datagrams that miss in a LAN are retried in its uplink (transitively). *)

val set_lan_shard : t -> lan -> int -> unit
(** Pin the LAN (and every host attached to it) to shard [i]: its
    traffic draws from that shard's RNG and fires on that shard's heap.
    New LANs start on shard 0.  Raises [Invalid_argument] on a bad
    index. *)

val lan_shard : lan -> int

val host_shard : t -> host -> int
(** The shard index the host's traffic runs on (its LAN's shard, or 0
    for un-LANed hosts). *)

val partition : t -> lan -> lan -> unit
(** Sever routing across the (symmetric) LAN pair: unicast resolution
    refuses to cross that edge until {!heal}.  Idempotent. *)

val heal : t -> lan -> lan -> unit
val partitioned : t -> lan -> lan -> bool

val add_host : t -> name:string -> host
val host_name : host -> string
val host_ip : host -> Ip.t option
val set_host_ip : host -> Ip.t option -> unit
val host_dns : host -> Ip.t option
val set_host_dns : host -> Ip.t option -> unit

val attach : host -> lan -> unit
(** Joining a LAN implicitly leaves the previous one. *)

val detach : host -> unit
val lan_of : host -> lan option
val hosts_of : lan -> host list

val on_udp : host -> port:int -> (ctx -> datagram -> unit) -> unit
(** Replaces any previous handler on that port. *)

val send :
  t -> from:host -> ?sport:int -> dst:Ip.t -> dport:int -> string -> unit
(** Queue a datagram.  Unicast resolves within the sender's LAN and then
    its uplink chain (never crossing a partitioned edge);
    {!Ip.broadcast} reaches every other host of the sender's LAN.  Each
    (datagram, receiver) pair crosses its link's impairment policy;
    unroutable datagrams and drops are counted per reason in {!stats}. *)

val run : ?until:int -> t -> int
(** Drive the event loop; returns events processed.  Single-shard worlds
    delegate straight to {!Sim.run}.  Sharded worlds run a conservative
    epoch loop: flush cross-shard inboxes, run every shard up to the
    globally earliest pending event plus the batch window, repeat.

    With a {!set_barrier} hook installed, the run is segmented at
    barrier times [k * every_us]: every shard is drained through the
    barrier (inclusive) before the hook observes it. *)

val now : t -> int
(** Furthest shard clock, µs.  At a barrier, every shard agrees. *)

val set_barrier : t -> every_us:int -> (int -> unit) -> unit
(** Install a periodic synchronization hook, replacing any earlier one.
    During {!run}, at every multiple of [every_us] (within the horizon),
    all shards are first drained of every event at or before the barrier
    time, then the hook is called with it.  State derived from executed
    events is therefore order-independent at the hook — the same seeded
    run observes the same values for any shard count.  This is the
    monitor's scrape driver.  Without [?until], barriers fire only while
    events remain pending. *)

val clear_barrier : t -> unit
