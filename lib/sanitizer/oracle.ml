module Shadow = Memsim.Shadow
module Tr = Telemetry.Trace

type kind =
  | Redzone_write
  | Ret_slot_overwrite
  | Tainted_pc
  | Tainted_syscall

let kind_name = function
  | Redzone_write -> "redzone-write"
  | Ret_slot_overwrite -> "ret-slot-overwrite"
  | Tainted_pc -> "tainted-pc"
  | Tainted_syscall -> "tainted-syscall"

let severity = function
  | Redzone_write -> 0
  | Ret_slot_overwrite -> 1
  | Tainted_pc -> 2
  | Tainted_syscall -> 3

type report = {
  kind : kind;
  step : int;
  pc : int;
  addr : int;
  target : int;
  label : Shadow.label;
  origin : string;
  detail : string;
}

let wire_offset r = Shadow.offset_of r.label
let source_id r = Shadow.source_of r.label

type source = { origin : string; length : int }

(* A redzone records whether it has already reported this parse, so an
   8 KiB smash yields one finding per zone rather than thousands. *)
type redzone = { base : int; len : int; mutable fired : bool }

type t = {
  shadow : Shadow.t;
  regs : int array;  (* 16 taint slots cover both ISAs; x86 uses 0..7 *)
  mutable sources : (int * source) list;  (* newest first *)
  mutable next_source : int;
  ret_slots : (int, bool ref) Hashtbl.t;  (* slot base -> reported? *)
  mutable redzones : redzone list;
  mutable reports : report list;  (* newest first *)
  mutable n_reports : int;
  counts : int array;  (* indexed by severity *)
  mutable trace : Tr.t option;
}

let create () =
  {
    shadow = Shadow.create ();
    regs = Array.make 16 0;
    sources = [];
    next_source = 0;
    ret_slots = Hashtbl.create 16;
    redzones = [];
    reports = [];
    n_reports = 0;
    counts = Array.make 4 0;
    trace = None;
  }

let set_trace t tr = t.trace <- tr

let new_source t ~origin ~length =
  let id = t.next_source in
  t.next_source <- id + 1;
  t.sources <- (id, { origin; length }) :: t.sources;
  id

let origin_of t id =
  match List.assoc_opt id t.sources with Some s -> s.origin | None -> "?"

let begin_parse t =
  Shadow.clear t.shadow;
  Array.fill t.regs 0 16 0;
  Hashtbl.reset t.ret_slots;
  t.redzones <- []

let taint t ~src addr ~len =
  for i = 0 to len - 1 do
    Shadow.set t.shadow
      (Memsim.Word.add addr i)
      (Shadow.make ~src ~offset:i)
  done

let mem_label t addr = Shadow.get t.shadow addr

let mem_label32 t addr =
  let l0 = Shadow.get t.shadow addr in
  let l1 = Shadow.get t.shadow (Memsim.Word.add addr 1) in
  let l2 = Shadow.get t.shadow (Memsim.Word.add addr 2) in
  let l3 = Shadow.get t.shadow (Memsim.Word.add addr 3) in
  Shadow.join l0 (Shadow.join l1 (Shadow.join l2 l3))

let set_mem_label t addr l = Shadow.set t.shadow addr l
let reg_label t i = t.regs.(i)
let set_reg_label t i l = t.regs.(i) <- l
let tainted_bytes t = Shadow.tainted t.shadow

let note_ret_slot t addr =
  if not (Hashtbl.mem t.ret_slots addr) then
    Hashtbl.replace t.ret_slots addr (ref false)

let clear_ret_slot t addr = Hashtbl.remove t.ret_slots addr
let ret_slot_count t = Hashtbl.length t.ret_slots

let add_redzone t ~base ~len =
  if len > 0 then t.redzones <- { base; len; fired = false } :: t.redzones

let protect_frame t ~buffer (frame : Machine.Stack_frame.t) =
  note_ret_slot t (buffer + frame.off_ret);
  add_redzone t ~base:(buffer + frame.buffer_size)
    ~len:(frame.frame_end - frame.buffer_size)

let record t ~kind ~step ~pc ~addr ~target ~label ~detail =
  let origin = origin_of t (Shadow.source_of label) in
  let r = { kind; step; pc; addr; target; label; origin; detail } in
  t.reports <- r :: t.reports;
  t.n_reports <- t.n_reports + 1;
  t.counts.(severity kind) <- t.counts.(severity kind) + 1;
  match t.trace with
  | None -> ()
  | Some tr ->
      Tr.emit tr ~cat:"sanitizer" ~track:"sanitizer"
        ~args:
          [
            ("step", Tr.I step);
            ("pc", Tr.I pc);
            ("addr", Tr.I addr);
            ("target", Tr.I target);
            ("src", Tr.I (Shadow.source_of label));
            ("wire_offset", Tr.I (Shadow.offset_of label));
            ("detail", Tr.S detail);
          ]
        (kind_name kind)

(* Is any byte of [addr, addr+len) inside a registered return slot?
   Slots are 4 bytes, so the slot containing byte [b] must start in
   [b-3, b]: a handful of hash lookups per store, independent of how
   many slots are live. *)
let hit_ret_slot t addr len =
  let found = ref None in
  (try
     for b = addr to addr + len - 1 do
       for s = b - 3 to b do
         match Hashtbl.find_opt t.ret_slots s with
         | Some fired when s <= b && b < s + 4 ->
             found := Some (s, fired);
             raise Exit
         | _ -> ()
       done
     done
   with Exit -> ());
  !found

let hit_redzone t addr len =
  List.find_opt
    (fun z -> addr < z.base + z.len && addr + len > z.base)
    t.redzones

let store t ~pc ~step ~addr ~len ~value ~label =
  for i = 0 to len - 1 do
    Shadow.set t.shadow (Memsim.Word.add addr i) label
  done;
  if label <> 0 then begin
    match hit_ret_slot t addr len with
    | Some (slot, fired) ->
        if not !fired then begin
          fired := true;
          record t ~kind:Ret_slot_overwrite ~step ~pc ~addr:slot ~target:value
            ~label
            ~detail:
              (Printf.sprintf "tainted %d-byte store over return slot" len)
        end
    | None -> (
        match hit_redzone t addr len with
        | Some z when not z.fired ->
            z.fired <- true;
            record t ~kind:Redzone_write ~step ~pc ~addr ~target:value ~label
              ~detail:
                (Printf.sprintf "tainted write %d bytes past buffer end"
                   (addr - z.base))
        | _ -> ())
  end

let check_pc t ~pc ~step ~target ~slot ~label ~detail =
  if label <> 0 then
    record t ~kind:Tainted_pc ~step ~pc ~addr:slot ~target ~label ~detail

let check_syscall t ~pc ~step ~number ~addr ~label ~detail =
  if label <> 0 then
    record t ~kind:Tainted_syscall ~step ~pc ~addr ~target:number ~label
      ~detail

let reports t = List.rev t.reports

let first_report t =
  match t.reports with [] -> None | l -> Some (List.nth l (List.length l - 1))

let report_count t = t.n_reports
let count t kind = t.counts.(severity kind)

let clear_reports t =
  t.reports <- [];
  t.n_reports <- 0;
  Array.fill t.counts 0 4 0

let pp_report ppf r =
  Format.fprintf ppf
    "%s step=%d pc=0x%x addr=0x%x target=0x%x src=%d wire+%d origin=%s (%s)"
    (kind_name r.kind) r.step r.pc r.addr r.target (source_id r)
    (wire_offset r) r.origin r.detail

let render ?symbolize r =
  let sym =
    match symbolize with
    | None -> Printf.sprintf "0x%x" r.pc
    | Some f -> f r.pc
  in
  Printf.sprintf
    "%-19s wire[%d]@%s -> mem 0x%x -> pc %s  step=%d target=0x%x  %s"
    (kind_name r.kind) (wire_offset r) r.origin r.addr sym r.step r.target
    r.detail

let register_metrics t reg =
  List.iter
    (fun kind ->
      Telemetry.Metrics.probe reg
        ~help:"sanitizer findings by detection kind"
        ~labels:[ ("kind", kind_name kind) ]
        ~kind:`Counter "sanitizer_reports_total" (fun () ->
          float_of_int (count t kind)))
    [ Redzone_write; Ret_slot_overwrite; Tainted_pc; Tainted_syscall ];
  Telemetry.Metrics.probe reg ~help:"taint sources registered"
    ~kind:`Counter "sanitizer_sources_total" (fun () ->
      float_of_int t.next_source);
  Telemetry.Metrics.probe reg ~help:"guest bytes currently tainted"
    ~kind:`Gauge "sanitizer_tainted_bytes" (fun () ->
      float_of_int (tainted_bytes t));
  Telemetry.Metrics.probe reg ~help:"live return-address slots"
    ~kind:`Gauge "sanitizer_ret_slots" (fun () ->
      float_of_int (ret_slot_count t))
