(** Shadow-memory exploit oracle: byte-granular taint state plus the
    detection rules the sanitized interpreter loops fire against.

    The oracle owns everything the sanitizer knows that the CPU does not:
    the shadow map (one label per guest byte — {!Memsim.Shadow}),
    per-register taint for both ISAs, the provenance table of taint
    sources (one per attacker-controlled datagram), the return-address
    slot map, and the stack redzones.  The [run_sanitized] loops in
    [Isa_x86.Cpu] / [Isa_arm.Cpu] feed it three things — stores, indirect
    control transfers, and syscalls — and it decides whether each one is
    a finding.

    Detections, in the order an overflow trips them (severity ascending):

    - {e redzone write}: a tainted byte lands between the end of the
      overflow buffer and the end of its frame — the smash itself,
      caught before any slot that matters is corrupted;
    - {e return-address-slot overwrite}: a tainted store covers a saved
      return address / lr slot;
    - {e tainted pc}: an indirect control transfer is about to load its
      target from attacker bytes — the hijack;
    - {e tainted syscall}: the syscall number, or the path/argument bytes
      of an exec-class syscall, derive from attacker bytes.

    The oracle is a strict observer: it never reads or writes guest
    memory and never touches CPU registers, so a sanitized run retires
    exactly the instructions a plain run does (the differential tests
    hold this unconditionally). *)

module Shadow = Memsim.Shadow

type kind =
  | Redzone_write
  | Ret_slot_overwrite
  | Tainted_pc
  | Tainted_syscall

val kind_name : kind -> string
(** ["redzone-write"] / ["ret-slot-overwrite"] / ["tainted-pc"] /
    ["tainted-syscall"]. *)

val severity : kind -> int
(** Detection-point ordering, 0 (earliest in an overflow) .. 3. *)

type report = {
  kind : kind;
  step : int;  (** CPU retired-instruction count at detection *)
  pc : int;  (** address of the instruction that tripped the rule *)
  addr : int;
      (** the memory address involved: store target for writes, the slot
          the control-transfer target was loaded from for tainted-pc,
          the path address for tainted syscalls *)
  target : int;
      (** the tainted value: byte/word stored, hijacked pc target, or
          syscall number *)
  label : Shadow.label;  (** provenance label of the offending byte *)
  origin : string;  (** origin string of the taint source *)
  detail : string;
}

val wire_offset : report -> int
(** Offset within the taint source (= UDP payload offset) of the byte
    that tripped the detection. *)

val source_id : report -> int

type t

val create : unit -> t

val set_trace : t -> Telemetry.Trace.t option -> unit
(** Reports additionally emit instant events under [cat:"sanitizer"]. *)

(** {1 Taint sources and per-parse lifecycle} *)

val new_source : t -> origin:string -> length:int -> int
(** Allocate a provenance id for an attacker-controlled byte string
    (e.g. one UDP response).  Ids are dense from 0 and survive
    {!begin_parse}, so reports from successive datagrams stay
    distinguishable. *)

val origin_of : t -> int -> string
(** Origin string of a source id; ["?"] if unknown. *)

val begin_parse : t -> unit
(** Reset the per-run state — shadow map, register taint, return-slot
    map, redzones — while keeping sources, reports, and counters.  The
    daemon calls this once per delivered datagram; benchmark harnesses
    call it before each sanitized run. *)

val taint : t -> src:int -> int -> len:int -> unit
(** [taint t ~src addr ~len] marks [len] guest bytes starting at [addr]
    as bytes [0..len-1] of source [src]. *)

(** {1 Shadow accessors (used by the propagation loops and tests)} *)

val mem_label : t -> int -> Shadow.label
val mem_label32 : t -> int -> Shadow.label
(** Join of the four byte labels at an address. *)

val set_mem_label : t -> int -> Shadow.label -> unit
val reg_label : t -> int -> Shadow.label
(** Taint of register index [i] (x86 uses 0..7, ARM 0..15). *)

val set_reg_label : t -> int -> Shadow.label -> unit
val tainted_bytes : t -> int

(** {1 Frame protection} *)

val note_ret_slot : t -> int -> unit
(** Register a 4-byte return-address slot at [addr].  The sanitized
    loops call this as [call]/[push {…, lr}] retire; the daemon also
    registers the overflow frame's slot statically from
    {!Machine.Stack_frame} geometry. *)

val clear_ret_slot : t -> int -> unit
(** The slot was legitimately consumed ([ret] / [pop {…, pc}]). *)

val ret_slot_count : t -> int

val add_redzone : t -> base:int -> len:int -> unit

val protect_frame : t -> buffer:int -> Machine.Stack_frame.t -> unit
(** Register the frame's return slot ([buffer + off_ret]) and a redzone
    covering [buffer + buffer_size, buffer + frame_end). *)

(** {1 Detection entry points (called by the sanitized loops)} *)

val store :
  t -> pc:int -> step:int -> addr:int -> len:int -> value:int ->
  label:Shadow.label -> unit
(** Commit a retired store to the shadow map and run the redzone /
    return-slot rules (which only ever fire for tainted labels, so
    ordinary prologue spills are free of false positives).  Each redzone
    and each slot reports at most once per parse. *)

val check_pc :
  t -> pc:int -> step:int -> target:int -> slot:int ->
  label:Shadow.label -> detail:string -> unit
(** About to transfer control to [target] loaded from [slot]; fires
    {!Tainted_pc} when [label] is non-zero. *)

val check_syscall :
  t -> pc:int -> step:int -> number:int -> addr:int ->
  label:Shadow.label -> detail:string -> unit
(** About to enter the kernel; fires {!Tainted_syscall} when [label]
    (precomputed by the loop from the number register, argument
    registers, and exec path bytes) is non-zero. *)

(** {1 Results} *)

val reports : t -> report list
(** Oldest first. *)

val first_report : t -> report option
val report_count : t -> int
val count : t -> kind -> int
val clear_reports : t -> unit

val pp_report : Format.formatter -> report -> unit

val render : ?symbolize:(int -> string) -> report -> string
(** One-line report with the provenance chain
    wire offset → memory address → pc, symbolizing [pc] when a resolver
    is given. *)

val register_metrics : t -> Telemetry.Metrics.t -> unit
(** Pull-style probes: [sanitizer_reports_total{kind=…}],
    [sanitizer_sources_total], [sanitizer_tainted_bytes],
    [sanitizer_ret_slots]. *)
