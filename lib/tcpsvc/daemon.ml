module Mem = Memsim.Memory
module O = Machine.Outcome

type disposition =
  | Handled
  | Rejected of string
  | Crashed of O.stop_reason
  | Compromised of O.stop_reason
  | Blocked of O.stop_reason

let pp_disposition ppf = function
  | Handled -> Format.pp_print_string ppf "handled"
  | Rejected why -> Format.fprintf ppf "rejected (%s)" why
  | Crashed r -> Format.fprintf ppf "CRASHED: %a" O.pp r
  | Compromised r -> Format.fprintf ppf "COMPROMISED: %a" O.pp r
  | Blocked r -> Format.fprintf ppf "blocked by defense: %a" O.pp r

type config = {
  patched : bool;
  arch : Loader.Arch.t;
  profile : Defense.Profile.t;
  boot_seed : int;
}

type t = {
  config : config;
  mutable proc : Loader.Process.t;
  mutable alive : bool;
  mutable restarts : int;
}

let build_spec config =
  match config.arch with
  | Loader.Arch.X86 ->
      Program_x86.spec ~patched:config.patched ~profile:config.profile
  | Loader.Arch.Arm ->
      Program_arm.spec ~patched:config.patched ~profile:config.profile

let boot config ~restarts =
  Loader.Process.boot (build_spec config) ~profile:config.profile
    ~seed:(config.boot_seed + (restarts * 7919))

let create config =
  { config; proc = boot config ~restarts:0; alive = true; restarts = 0 }

let restart t =
  t.restarts <- t.restarts + 1;
  t.proc <- boot t.config ~restarts:t.restarts;
  t.alive <- true

let process t = t.proc
let alive t = t.alive

let frame ~tag =
  let n = String.length tag in
  if n > 0xFFFF then invalid_arg "Tcpsvc.frame: tag too long";
  Printf.sprintf "ZZ%c%c%s" (Char.chr ((n lsr 8) land 0xFF)) (Char.chr (n land 0xFF)) tag

let handle_frame t wire =
  if not t.alive then Rejected "daemon not running"
  else if String.length wire < 4 || wire.[0] <> 'Z' || wire.[1] <> 'Z' then
    Rejected "bad magic"
  else
    let buf = t.proc.Loader.Process.layout.Loader.Layout.heap_base in
    if String.length wire > t.proc.Loader.Process.layout.Loader.Layout.heap_size
    then Rejected "oversized frame"
    else begin
      Mem.write_bytes t.proc.Loader.Process.mem buf wire;
      let entry = Loader.Process.symbol t.proc "handle_frame" in
      let r =
        Loader.Process.call t.proc ~fuel:400_000 ~entry
          ~args:[ buf; String.length wire ]
      in
      match r.Loader.Process.outcome with
      | O.Halted ->
          if r.Loader.Process.ret = 0 then Handled
          else Rejected "length check (patched build)"
      | O.Exec _ as reason ->
          t.alive <- false;
          Compromised reason
      | (O.Fault _ | O.Decode_error _ | O.Fuel_exhausted | O.Exited _) as reason
        ->
          t.alive <- false;
          Crashed reason
      | (O.Cfi_violation _ | O.Aborted _) as reason ->
          t.alive <- false;
          Blocked reason
    end
