type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let hex_val c =
    if c >= '0' && c <= '9' then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
    else Char.code c - Char.code 'A' + 10
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'
          | Some '\\' -> advance (); Buffer.add_char b '\\'
          | Some '/' -> advance (); Buffer.add_char b '/'
          | Some 'b' -> advance (); Buffer.add_char b '\b'
          | Some 'f' -> advance (); Buffer.add_char b '\012'
          | Some 'n' -> advance (); Buffer.add_char b '\n'
          | Some 'r' -> advance (); Buffer.add_char b '\r'
          | Some 't' -> advance (); Buffer.add_char b '\t'
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some c when is_hex c ->
                    code := (!code * 16) + hex_val c;
                    advance ()
                | _ -> fail "bad \\u escape"
              done;
              (* Keep it byte-simple: BMP code points UTF-8-encoded, no
                 surrogate-pair recombination — our own writers never emit
                 non-ASCII escapes. *)
              let c = !code in
              if c < 0x80 then Buffer.add_char b (Char.chr c)
              else if c < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
              end
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
          advance ();
          Buffer.add_char b c
    done;
    Buffer.contents b
  in
  let digits () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (string_lit ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true"; Bool true
    | Some 'f' -> literal "false"; Bool false
    | Some 'n' -> literal "null"; Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad (!pos, "trailing garbage"));
    Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let validate s = Result.map (fun (_ : value) -> ()) (parse s)

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
