exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c when is_hex c -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ -> advance ()
    done
  in
  let digits () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> string_lit ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
        end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then raise (Bad (!pos, "trailing garbage"));
    Ok ()
  with Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)
