(** Minimal JSON well-formedness checker used by the trace smoke tests
    ("the exported file must parse") without pulling a JSON library into
    the dependency set.  It validates syntax only — no value is built. *)

val validate : string -> (unit, string) result
(** [Ok ()] iff the whole string is exactly one valid JSON value
    (surrounded by optional whitespace); [Error msg] pinpoints the
    offending byte offset otherwise. *)
