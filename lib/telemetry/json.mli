(** Minimal JSON parser used by the trace smoke tests ("the exported
    file must parse") and the bench regression comparator, without
    pulling a JSON library into the dependency set. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parses exactly one JSON value (surrounded by optional whitespace);
    [Error msg] pinpoints the offending byte offset otherwise.  Numbers
    become [float]s; object member order is preserved. *)

val validate : string -> (unit, string) result
(** [parse] with the value discarded — syntax check only. *)

val member : string -> value -> value option
(** First member with that key of an [Obj]; [None] otherwise. *)

val to_list : value -> value list option
val to_float : value -> float option
val to_string : value -> string option
