type sample =
  | Value of float
  | Hist of { cumulative : (float * int) list; sum : float; count : int }

type series = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_type : string;  (* "counter" | "gauge" | "histogram" *)
  s_seq : int;  (* registration order, for stable rendering within a name *)
  s_sample : unit -> sample;
}

type t = { mutable series : series list; mutable next_seq : int }

let create () = { series = []; next_seq = 0 }

(* Same (name, labels) registered twice replaces the earlier series — a
   re-instrumented object (e.g. a restarted daemon) wins. *)
let add t ~name ~help ~labels ~typ sample =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s =
    {
      s_name = name;
      s_help = help;
      s_labels = labels;
      s_type = typ;
      s_seq = seq;
      s_sample = sample;
    }
  in
  t.series <-
    s
    :: List.filter
         (fun x -> not (x.s_name = name && x.s_labels = labels))
         t.series

type counter = float ref

let counter t ?(help = "") ?(labels = []) name =
  let r = ref 0.0 in
  add t ~name ~help ~labels ~typ:"counter" (fun () -> Value !r);
  r

let inc ?(by = 1.0) c = c := !c +. by
let counter_value c = !c

type gauge = float ref

let gauge t ?(help = "") ?(labels = []) name =
  let r = ref 0.0 in
  add t ~name ~help ~labels ~typ:"gauge" (fun () -> Value !r);
  r

let set g v = g := v
let gauge_value g = !g

type histogram = {
  h_bounds : float array;  (* ascending upper bounds, +Inf excluded *)
  h_counts : int array;  (* per-bucket (non-cumulative), last = overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

let default_buckets = [ 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ]

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  if buckets = [] then invalid_arg "Metrics.histogram: empty bucket list";
  let bounds = Array.of_list (List.sort_uniq compare buckets) in
  let h =
    {
      h_bounds = bounds;
      h_counts = Array.make (Array.length bounds + 1) 0;
      h_sum = 0.0;
      h_count = 0;
    }
  in
  add t ~name ~help ~labels ~typ:"histogram" (fun () ->
      let acc = ref 0 in
      let cumulative =
        Array.to_list
          (Array.mapi
             (fun i le ->
               acc := !acc + h.h_counts.(i);
               (le, !acc))
             h.h_bounds)
      in
      Hist { cumulative; sum = h.h_sum; count = h.h_count });
  h

let observe h v =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
  h.h_counts.(slot 0) <- h.h_counts.(slot 0) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let probe t ?(help = "") ?(labels = []) ~kind name f =
  let typ = match kind with `Counter -> "counter" | `Gauge -> "gauge" in
  add t ~name ~help ~labels ~typ (fun () -> Value (f ()))

(* --- quantiles ---------------------------------------------------------- *)

(* Shared by [quantile] (live histogram) and [sample_quantile] (a scraped
   [Hist]): walk the cumulative bucket counts and linearly interpolate the
   rank inside the first bucket that reaches it.  Observations above the
   largest finite bound clamp to that bound — the overflow bucket has no
   upper edge to interpolate toward. *)
let quantile_of_cumulative cumulative count q =
  if count = 0 then Float.nan
  else
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int count in
    let rec walk lo lo_cum = function
      | [] -> lo (* rank lands in the overflow bucket: clamp to last bound *)
      | (le, cum) :: rest ->
          if cum > lo_cum && float_of_int cum >= rank then
            let span = float_of_int (cum - lo_cum) in
            let frac = (rank -. float_of_int lo_cum) /. span in
            lo +. ((le -. lo) *. frac)
          else walk le cum rest
    in
    walk 0.0 0 cumulative

let quantile h q =
  let acc = ref 0 in
  let cumulative =
    Array.to_list
      (Array.mapi
         (fun i le ->
           acc := !acc + h.h_counts.(i);
           (le, !acc))
         h.h_bounds)
  in
  quantile_of_cumulative cumulative h.h_count q

let sample_quantile s q =
  match s with
  | Value _ -> Float.nan
  | Hist { cumulative; count; _ } -> quantile_of_cumulative cumulative count q

(* --- scrape access ------------------------------------------------------ *)

let samples t =
  let names = List.sort_uniq compare (List.map (fun s -> s.s_name) t.series) in
  List.concat_map
    (fun name ->
      let group =
        List.sort
          (fun a b -> compare a.s_seq b.s_seq)
          (List.filter (fun s -> s.s_name = name) t.series)
      in
      List.map
        (fun s -> (s.s_name, s.s_labels, s.s_type, s.s_sample ()))
        group)
    names

(* --- exposition --------------------------------------------------------- *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

(* Integral values print without a fraction (the common counter case);
   everything else gets a fixed precision — both deterministic. *)
let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let bound_label le =
  if Float.is_integer le && Float.abs le < 1e15 then Printf.sprintf "%.0f" le
  else Printf.sprintf "%g" le

let expose t =
  let names =
    List.sort_uniq compare (List.map (fun s -> s.s_name) t.series)
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      let group =
        List.sort
          (fun a b -> compare a.s_seq b.s_seq)
          (List.filter (fun s -> s.s_name = name) t.series)
      in
      let first = List.hd group in
      if first.s_help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name first.s_help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name first.s_type);
      List.iter
        (fun s ->
          match s.s_sample () with
          | Value v ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" name (render_labels s.s_labels)
                   (render_value v))
          | Hist { cumulative; sum; count } ->
              List.iter
                (fun (le, n) ->
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" name
                       (render_labels (s.s_labels @ [ ("le", bound_label le) ]))
                       n))
                cumulative;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (render_labels (s.s_labels @ [ ("le", "+Inf") ]))
                   count);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" name (render_labels s.s_labels)
                   (render_value sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" name
                   (render_labels s.s_labels) count))
        group)
    names;
  Buffer.contents b
