(** Metrics registry: counters, gauges, and histograms with labels, and
    Prometheus-style text exposition.

    Two registration styles:

    - {e push}: {!counter}/{!gauge}/{!histogram} return an instrument the
      caller updates ({!inc}, {!set}, {!observe});
    - {e pull}: {!probe} registers a closure sampled at {!expose} time —
      this is how the existing ad-hoc stats records ([Dns.Cache.stats],
      the [Netsim.World] fate counters, supervisor restart counts,
      icache hit/miss totals) join the registry without changing their
      own bookkeeping.

    Registering the same (name, labels) pair again replaces the earlier
    series.  {!expose} renders series grouped by name in alphabetical
    order with fixed number formatting, so a deterministic run exposes
    deterministic bytes. *)

type t

val create : unit -> t

type counter
type gauge
type histogram

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val inc : ?by:float -> counter -> unit
val counter_value : counter -> float

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float list ->
  string ->
  histogram
(** [buckets] are upper bounds (a [+Inf] bucket is implicit); the default
    is decades 1 .. 1e6 — suited to instruction counts and µs. *)

val observe : histogram -> float -> unit

val probe :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  kind:[ `Counter | `Gauge ] ->
  string ->
  (unit -> float) ->
  unit
(** Pull-style series: the closure is called at {!expose} time. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0..1], clamped) by linear
    interpolation over the bucket bounds, Prometheus
    [histogram_quantile]-style: the rank [q * count] is located in the
    cumulative bucket counts and interpolated between the bucket's lower
    and upper bound (the lowest bucket interpolates from 0).  Ranks that
    land in the overflow bucket clamp to the largest finite bound.
    Returns [nan] on an empty histogram. *)

type sample =
  | Value of float
  | Hist of { cumulative : (float * int) list; sum : float; count : int }
      (** [cumulative] pairs each finite upper bound with the cumulative
          count at-or-below it; [count] includes the overflow bucket. *)

val sample_quantile : sample -> float -> float
(** {!quantile} over a scraped {!Hist} sample; [nan] for a {!Value}. *)

val samples : t -> (string * (string * string) list * string * sample) list
(** One [(name, labels, type, sample)] per registered series, sampled
    now, in exposition order (names alphabetical, registration order
    within a name).  This is the scrape surface used by [Monitor]. *)

val expose : t -> string
(** Prometheus text exposition format: [# HELP] / [# TYPE] per metric
    name, then one line per labelled series ([_bucket]/[_sum]/[_count]
    for histograms). *)
