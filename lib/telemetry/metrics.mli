(** Metrics registry: counters, gauges, and histograms with labels, and
    Prometheus-style text exposition.

    Two registration styles:

    - {e push}: {!counter}/{!gauge}/{!histogram} return an instrument the
      caller updates ({!inc}, {!set}, {!observe});
    - {e pull}: {!probe} registers a closure sampled at {!expose} time —
      this is how the existing ad-hoc stats records ([Dns.Cache.stats],
      the [Netsim.World] fate counters, supervisor restart counts,
      icache hit/miss totals) join the registry without changing their
      own bookkeeping.

    Registering the same (name, labels) pair again replaces the earlier
    series.  {!expose} renders series grouped by name in alphabetical
    order with fixed number formatting, so a deterministic run exposes
    deterministic bytes. *)

type t

val create : unit -> t

type counter
type gauge
type histogram

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val inc : ?by:float -> counter -> unit
val counter_value : counter -> float

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float list ->
  string ->
  histogram
(** [buckets] are upper bounds (a [+Inf] bucket is implicit); the default
    is decades 1 .. 1e6 — suited to instruction counts and µs. *)

val observe : histogram -> float -> unit

val probe :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  kind:[ `Counter | `Gauge ] ->
  string ->
  (unit -> float) ->
  unit
(** Pull-style series: the closure is called at {!expose} time. *)

val expose : t -> string
(** Prometheus text exposition format: [# HELP] / [# TYPE] per metric
    name, then one line per labelled series ([_bucket]/[_sum]/[_count]
    for histograms). *)
