(* Campaign flight recorder.  See monitor.mli for the contract; the two
   load-bearing properties are (1) scrapes are driven by the sim clock at
   world barriers, so values are shard-count independent, and (2) every
   export path orders by explicit deterministic keys — no Hashtbl
   iteration order, no wall clock, no global emission sequence. *)

(* --- store --------------------------------------------------------------- *)

type point = {
  p_ts : int;
  p_last : float;
  p_sum : float;
  p_min : float;
  p_max : float;
  p_count : int;
}

(* Fixed-capacity ring with pairwise-merge downsampling: points [0..len-1]
   are chronological; every point except possibly the last covers [stride]
   scrapes ([fill] tracks the last point's coverage).  When the array
   fills, adjacent points merge pairwise and the stride doubles — capacity
   stays bounded while the window keeps extending. *)
type sstore = {
  ss_typ : string;
  ss_pts : point array;
  mutable ss_len : int;
  mutable ss_stride : int;
  mutable ss_fill : int;  (* scrapes merged into the last point *)
}

let zero_point = { p_ts = 0; p_last = 0.; p_sum = 0.; p_min = 0.; p_max = 0.; p_count = 0 }

let merge_points a b =
  {
    p_ts = b.p_ts;
    p_last = b.p_last;
    p_sum = a.p_sum +. b.p_sum;
    p_min = min a.p_min b.p_min;
    p_max = max a.p_max b.p_max;
    p_count = a.p_count + b.p_count;
  }

let sstore_create ~cap typ =
  { ss_typ = typ; ss_pts = Array.make cap zero_point; ss_len = 0; ss_stride = 1; ss_fill = 0 }

let sstore_append ss ~ts v =
  let fresh = { p_ts = ts; p_last = v; p_sum = v; p_min = v; p_max = v; p_count = 1 } in
  if ss.ss_len > 0 && ss.ss_fill < ss.ss_stride then begin
    ss.ss_pts.(ss.ss_len - 1) <- merge_points ss.ss_pts.(ss.ss_len - 1) fresh;
    ss.ss_fill <- ss.ss_fill + 1
  end
  else begin
    if ss.ss_len = Array.length ss.ss_pts then begin
      let half = ss.ss_len / 2 in
      for i = 0 to half - 1 do
        ss.ss_pts.(i) <- merge_points ss.ss_pts.(2 * i) ss.ss_pts.((2 * i) + 1)
      done;
      ss.ss_len <- half;
      ss.ss_stride <- ss.ss_stride * 2
    end;
    ss.ss_pts.(ss.ss_len) <- fresh;
    ss.ss_len <- ss.ss_len + 1;
    ss.ss_fill <- 1
  end

let sstore_points ss = Array.to_list (Array.sub ss.ss_pts 0 ss.ss_len)

(* Latest point with p_ts <= ts; falls back to the oldest retained point
   when the window has already been downsampled past [ts]. *)
let sstore_at ss ts =
  if ss.ss_len = 0 then None
  else begin
    let found = ref None in
    (try
       for i = ss.ss_len - 1 downto 0 do
         if ss.ss_pts.(i).p_ts <= ts then begin
           found := Some ss.ss_pts.(i);
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end

let sstore_oldest ss = if ss.ss_len = 0 then None else Some ss.ss_pts.(0)
let sstore_newest ss = if ss.ss_len = 0 then None else Some ss.ss_pts.(ss.ss_len - 1)

(* --- expressions --------------------------------------------------------- *)

type selector = { sel_name : string; sel_labels : (string * string) list }

type expr =
  | Const of float
  | Series of selector
  | Rate of selector * int
  | Delta of selector * int
  | Quantile of float * selector
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type cmp = Gt | Lt | Ge | Le

(* --- rules --------------------------------------------------------------- *)

type rrule = { rr_name : string; rr_expr : expr }

type alert_state = Inactive | Pending | Firing

let state_name = function
  | Inactive -> "inactive"
  | Pending -> "pending"
  | Firing -> "firing"

type transition = {
  tr_ts : int;
  tr_rule : string;
  tr_from : alert_state;
  tr_to : alert_state;
  tr_value : float;
}

type episode = {
  ep_rule : string;
  ep_pending : int;
  mutable ep_firing : int;
  mutable ep_resolved : int;
  mutable ep_peak : float;
}

type arule = {
  ar_name : string;
  ar_expr : expr;
  ar_cmp : cmp;
  ar_thr : float;
  ar_for : int;
  ar_clear : float;
  mutable ar_state : alert_state;
  mutable ar_since : int;  (* ts the current episode entered pending *)
  mutable ar_episode : episode option;
  mutable ar_last : float;
}

(* --- journal ------------------------------------------------------------- *)

type entry = {
  e_ts : int;
  e_source : string;
  e_kind : string;
  e_actor : string;
  e_detail : string;
}

type jrec = { jr_entry : entry; jr_ord : int (* per-actor ordinal *) }

let device_sources = [ "net"; "daemon"; "health"; "supervisor" ]

(* --- monitor ------------------------------------------------------------- *)

type t = {
  reg : Metrics.t;
  ival : int;
  cap : int;
  lookback : int;
  stores : (string, sstore) Hashtbl.t;  (* key = name ^ rendered labels *)
  mutable order : (string * (string * string) list * string) list;
      (* (name, labels, key), insertion order — never iterate [stores] *)
  mutable cur_hists : (string * (string * string) list * (float * int) list * int) list;
  mutable records : rrule list;  (* reverse declaration order *)
  mutable alerts : arule list;  (* reverse declaration order *)
  mutable trans : transition list;  (* reverse chronological *)
  mutable episodes : episode list;  (* reverse chronological *)
  jring : jrec array;
  mutable jstart : int;
  mutable jlen : int;
  mutable jtotal : int;
  jords : (string, int) Hashtbl.t;
  mutable nscrapes : int;
  mutable last_ts : int;
  mutable trace : Trace.t option;
}

let dummy_jrec =
  { jr_entry = { e_ts = 0; e_source = ""; e_kind = ""; e_actor = ""; e_detail = "" }; jr_ord = 0 }

let create ?(interval_us = 1_000_000) ?(points = 512) ?(journal_cap = 131072)
    ?lookback_us reg =
  if interval_us <= 0 then invalid_arg "Monitor.create: interval_us must be positive";
  if points < 2 then invalid_arg "Monitor.create: points must be >= 2";
  if journal_cap <= 0 then invalid_arg "Monitor.create: journal_cap must be positive";
  let points = if points land 1 = 1 then points + 1 else points in
  let lookback =
    match lookback_us with Some l -> max 0 l | None -> 2 * interval_us
  in
  {
    reg;
    ival = interval_us;
    cap = points;
    lookback;
    stores = Hashtbl.create 64;
    order = [];
    cur_hists = [];
    records = [];
    alerts = [];
    trans = [];
    episodes = [];
    jring = Array.make journal_cap dummy_jrec;
    jstart = 0;
    jlen = 0;
    jtotal = 0;
    jords = Hashtbl.create 64;
    nscrapes = 0;
    last_ts = -1;
    trace = None;
  }

let registry t = t.reg
let interval_us t = t.ival
let set_trace t tr = t.trace <- tr
let scrapes t = t.nscrapes
let last_scrape_us t = t.last_ts

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=\"" ^ v ^ "\"") labels)
      ^ "}"

let skey name labels = name ^ render_labels labels

let store_for t name labels typ =
  let key = skey name labels in
  match Hashtbl.find_opt t.stores key with
  | Some ss -> ss
  | None ->
      let ss = sstore_create ~cap:t.cap typ in
      Hashtbl.add t.stores key ss;
      t.order <- (name, labels, key) :: t.order;
      ss

let store_append t name labels typ ~ts v =
  let v = if Float.is_finite v then v else 0.0 in
  sstore_append (store_for t name labels typ) ~ts v

(* --- queries ------------------------------------------------------------- *)

let find_store t name labels = Hashtbl.find_opt t.stores (skey name labels)

let points t ?(labels = []) name =
  match find_store t name labels with
  | None -> []
  | Some ss -> sstore_points ss

let value_at t ?(labels = []) name ts =
  match find_store t name labels with
  | None -> None
  | Some ss -> Option.map (fun p -> p.p_last) (sstore_at ss ts)

let window_ends ss ~now ~window_us =
  match sstore_newest ss with
  | None -> None
  | Some p1 ->
      let p0 =
        match sstore_at ss (now - window_us) with
        | Some p -> p
        | None -> Option.get (sstore_oldest ss)
      in
      Some (p0, p1)

let rate_of ss ~now ~window_us =
  match window_ends ss ~now ~window_us with
  | None -> 0.0
  | Some (p0, p1) ->
      let dt = p1.p_ts - p0.p_ts in
      if dt <= 0 then 0.0
      else (p1.p_last -. p0.p_last) /. (float_of_int dt /. 1e6)

let delta_of ss ~now ~window_us =
  match window_ends ss ~now ~window_us with
  | None -> 0.0
  | Some (p0, p1) -> if p1.p_ts <= p0.p_ts then 0.0 else p1.p_last -. p0.p_last

let rate_over t ?(labels = []) name ~now ~window_us =
  match find_store t name labels with
  | None -> 0.0
  | Some ss -> rate_of ss ~now ~window_us

let delta_over t ?(labels = []) name ~now ~window_us =
  match find_store t name labels with
  | None -> 0.0
  | Some ss -> delta_of ss ~now ~window_us

(* --- evaluation ---------------------------------------------------------- *)

let labels_match sel_labels labels =
  List.for_all (fun (k, v) -> List.assoc_opt k labels = Some v) sel_labels

let matching_stores t sel =
  List.filter_map
    (fun (name, labels, key) ->
      if name = sel.sel_name && labels_match sel.sel_labels labels then
        Hashtbl.find_opt t.stores key
      else None)
    (List.rev t.order)

let rec eval t ~now e =
  let v =
    match e with
    | Const c -> c
    | Series sel ->
        List.fold_left
          (fun acc ss ->
            match sstore_newest ss with Some p -> acc +. p.p_last | None -> acc)
          0.0 (matching_stores t sel)
    | Rate (sel, w) ->
        List.fold_left
          (fun acc ss -> acc +. rate_of ss ~now ~window_us:w)
          0.0 (matching_stores t sel)
    | Delta (sel, w) ->
        List.fold_left
          (fun acc ss -> acc +. delta_of ss ~now ~window_us:w)
          0.0 (matching_stores t sel)
    | Quantile (q, sel) -> (
        let hit =
          List.find_opt
            (fun (name, labels, _, _) ->
              name = sel.sel_name && labels_match sel.sel_labels labels)
            t.cur_hists
        in
        match hit with
        | None -> 0.0
        | Some (_, _, cumulative, count) ->
            Metrics.sample_quantile (Metrics.Hist { cumulative; sum = 0.0; count }) q)
    | Add (a, b) -> eval t ~now a +. eval t ~now b
    | Sub (a, b) -> eval t ~now a -. eval t ~now b
    | Mul (a, b) -> eval t ~now a *. eval t ~now b
    | Div (a, b) ->
        let d = eval t ~now b in
        if d = 0.0 then 0.0 else eval t ~now a /. d
  in
  if Float.is_finite v then v else 0.0

(* --- rules --------------------------------------------------------------- *)

let record t ~name expr = t.records <- { rr_name = name; rr_expr = expr } :: t.records

let alert t ~name ?(for_us = 0) ?clear ~cmp ~threshold expr =
  let clear = match clear with Some c -> c | None -> threshold in
  t.alerts <-
    {
      ar_name = name;
      ar_expr = expr;
      ar_cmp = cmp;
      ar_thr = threshold;
      ar_for = max 0 for_us;
      ar_clear = clear;
      ar_state = Inactive;
      ar_since = 0;
      ar_episode = None;
      ar_last = 0.0;
    }
    :: t.alerts

let breaches cmp thr v =
  match cmp with Gt -> v > thr | Lt -> v < thr | Ge -> v >= thr | Le -> v <= thr

(* Hysteresis: a firing alert resolves only once the value crosses the
   clear threshold on the non-breaching side (inclusive). *)
let cleared cmp clear v =
  match cmp with Gt | Ge -> v <= clear | Lt | Le -> v >= clear

let more_breaching cmp a b = match cmp with Gt | Ge -> max a b | Lt | Le -> min a b

let transition t ~now ar to_state v =
  t.trans <-
    { tr_ts = now; tr_rule = ar.ar_name; tr_from = ar.ar_state; tr_to = to_state; tr_value = v }
    :: t.trans;
  ar.ar_state <- to_state

let step_alert t ~now ar =
  let v = eval t ~now ar.ar_expr in
  ar.ar_last <- v;
  (match ar.ar_episode with
  | Some ep when ar.ar_state <> Inactive -> ep.ep_peak <- more_breaching ar.ar_cmp ep.ep_peak v
  | _ -> ());
  match ar.ar_state with
  | Inactive ->
      if breaches ar.ar_cmp ar.ar_thr v then begin
        let ep =
          { ep_rule = ar.ar_name; ep_pending = now; ep_firing = -1; ep_resolved = -1; ep_peak = v }
        in
        ar.ar_episode <- Some ep;
        t.episodes <- ep :: t.episodes;
        ar.ar_since <- now;
        if ar.ar_for = 0 then begin
          ep.ep_firing <- now;
          transition t ~now ar Firing v
        end
        else transition t ~now ar Pending v
      end
  | Pending ->
      if not (breaches ar.ar_cmp ar.ar_thr v) then begin
        (* cancelled before firing: drop the episode *)
        (match ar.ar_episode with
        | Some ep -> t.episodes <- List.filter (fun e -> e != ep) t.episodes
        | None -> ());
        ar.ar_episode <- None;
        transition t ~now ar Inactive v
      end
      else if now - ar.ar_since >= ar.ar_for then begin
        (match ar.ar_episode with Some ep -> ep.ep_firing <- now | None -> ());
        transition t ~now ar Firing v
      end
  | Firing ->
      if cleared ar.ar_cmp ar.ar_clear v then begin
        (match ar.ar_episode with Some ep -> ep.ep_resolved <- now | None -> ());
        ar.ar_episode <- None;
        transition t ~now ar Inactive v
      end

(* --- scrape -------------------------------------------------------------- *)

let scrape t ~now =
  if t.nscrapes > 0 && now <= t.last_ts then ()
  else begin
    t.nscrapes <- t.nscrapes + 1;
    t.last_ts <- now;
    t.cur_hists <- [];
    List.iter
      (fun (name, labels, typ, sample) ->
        match sample with
        | Metrics.Value v -> store_append t name labels typ ~ts:now v
        | Metrics.Hist { cumulative; count; _ } ->
            t.cur_hists <- (name, labels, cumulative, count) :: t.cur_hists;
            store_append t name labels typ ~ts:now (float_of_int count))
      (Metrics.samples t.reg);
    t.cur_hists <- List.rev t.cur_hists;
    List.iter
      (fun rr ->
        let v = eval t ~now rr.rr_expr in
        store_append t rr.rr_name [] "gauge" ~ts:now v)
      (List.rev t.records);
    List.iter (fun ar -> step_alert t ~now ar) (List.rev t.alerts)
  end

(* --- journal ------------------------------------------------------------- *)

let journal t ~ts ~source ~actor ?(detail = "") kind =
  let ord =
    match Hashtbl.find_opt t.jords actor with Some n -> n | None -> 0
  in
  Hashtbl.replace t.jords actor (ord + 1);
  let r =
    {
      jr_entry = { e_ts = ts; e_source = source; e_kind = kind; e_actor = actor; e_detail = detail };
      jr_ord = ord;
    }
  in
  let cap = Array.length t.jring in
  if t.jlen < cap then begin
    t.jring.((t.jstart + t.jlen) mod cap) <- r;
    t.jlen <- t.jlen + 1
  end
  else begin
    t.jring.(t.jstart) <- r;
    t.jstart <- (t.jstart + 1) mod cap
  end;
  t.jtotal <- t.jtotal + 1

let journal_emitted t = t.jtotal
let journal_dropped t = t.jtotal - t.jlen

(* Export order: (ts, actor, per-actor ordinal).  Per-actor emission order
   is deterministic for a fixed seed regardless of shard count; actor
   names break same-timestamp ties between actors.  Global emission order
   would NOT be deterministic across shard counts. *)
let sorted_jrecs t =
  let cap = Array.length t.jring in
  let l = List.init t.jlen (fun i -> t.jring.((t.jstart + i) mod cap)) in
  List.stable_sort
    (fun a b ->
      let c = compare a.jr_entry.e_ts b.jr_entry.e_ts in
      if c <> 0 then c
      else
        let c = compare a.jr_entry.e_actor b.jr_entry.e_actor in
        if c <> 0 then c else compare a.jr_ord b.jr_ord)
    l

let journal_entries t = List.map (fun r -> r.jr_entry) (sorted_jrecs t)

(* --- alerts/incidents ---------------------------------------------------- *)

let transitions t = List.rev t.trans

let alert_states t = List.rev_map (fun ar -> (ar.ar_name, ar.ar_state)) t.alerts

type incident = {
  i_rule : string;
  i_pending_us : int;
  i_firing_us : int;
  i_resolved_us : int;
  i_peak : float;
  i_timeline : entry list;
  i_truncated : int;
}

let timeline_head = 48
let timeline_tail = 16

let trace_entries t ~lo ~hi =
  match t.trace with
  | None -> []
  | Some tr ->
      let acc = ref [] in
      List.iter
        (fun (e : Trace.event) ->
          if e.ts >= lo && e.ts <= hi && e.cat <> "cpu" && e.cat <> "mem" then
            acc :=
              {
                e_ts = e.ts;
                e_source = "trace:" ^ e.cat;
                e_kind = e.name;
                e_actor = e.track;
                e_detail =
                  String.concat " "
                    (List.map
                       (fun (k, v) ->
                         let s =
                           match v with
                           | Trace.I n -> string_of_int n
                           | Trace.S s -> s
                           | Trace.B b -> string_of_bool b
                           | Trace.F f -> Printf.sprintf "%.4f" f
                         in
                         k ^ "=" ^ s)
                       e.args);
              }
              :: !acc)
        (Trace.events tr);
      List.rev !acc

let build_timeline t ep =
  let ep_end = if ep.ep_resolved >= 0 then ep.ep_resolved else t.last_ts in
  let lo = max 0 (ep.ep_pending - t.lookback) in
  let window =
    List.filter
      (fun r -> r.jr_entry.e_ts >= lo && r.jr_entry.e_ts <= ep_end)
      (sorted_jrecs t)
  in
  (* Causal anchor: the first wire-provenance entry in the window.  The
     timeline then narrows to that device's own events plus scope-wide
     ones, starting at the anchor. *)
  let anchor =
    List.find_opt (fun r -> r.jr_entry.e_kind = "wire_provenance") window
  in
  let selected =
    match anchor with
    | None -> window
    | Some a ->
        List.filter
          (fun r ->
            r.jr_entry.e_actor = a.jr_entry.e_actor
            || not (List.mem r.jr_entry.e_source device_sources))
          window
  in
  let selected =
    match anchor with
    | None -> selected
    | Some a ->
        (* drop everything sorted before the anchor *)
        let rec from = function
          | [] -> []
          | r :: rest -> if r == a then r :: rest else from rest
        in
        from selected
  in
  let entries = List.map (fun r -> r.jr_entry) selected in
  (* Join trace events (sim-clock cats only) after the anchor point. *)
  let lo' =
    match anchor with Some a -> a.jr_entry.e_ts | None -> lo
  in
  let traced = trace_entries t ~lo:lo' ~hi:ep_end in
  let entries =
    (* Stable merge by ts; journal entries win ties (they carry causal
       ordinals), trace events slot in after. *)
    List.stable_sort
      (fun a b -> compare a.e_ts b.e_ts)
      (entries @ traced)
  in
  (* Truncate after the last containment event so the narrative ends at
     the defense acting, not at trailing noise. *)
  let entries =
    let is_containment e = e.e_kind = "quarantine" || e.e_kind = "rollback" in
    let last_idx = ref (-1) in
    List.iteri (fun i e -> if is_containment e then last_idx := i) entries;
    if !last_idx < 0 then entries
    else List.filteri (fun i _ -> i <= !last_idx) entries
  in
  let n = List.length entries in
  if n <= timeline_head + timeline_tail then (entries, 0)
  else
    let head = List.filteri (fun i _ -> i < timeline_head) entries in
    let tail = List.filteri (fun i _ -> i >= n - timeline_tail) entries in
    (head @ tail, n - timeline_head - timeline_tail)

let incidents t =
  List.rev_map
    (fun ep ->
      let timeline, truncated = build_timeline t ep in
      {
        i_rule = ep.ep_rule;
        i_pending_us = ep.ep_pending;
        i_firing_us = ep.ep_firing;
        i_resolved_us = ep.ep_resolved;
        i_peak = ep.ep_peak;
        i_timeline = timeline;
        i_truncated = truncated;
      })
    (List.filter (fun ep -> ep.ep_firing >= 0) t.episodes)

(* --- export -------------------------------------------------------------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let json t =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\n  \"schema\": \"monitor-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"interval_us\": %d,\n" t.ival);
  Buffer.add_string b (Printf.sprintf "  \"scrapes\": %d,\n" t.nscrapes);
  Buffer.add_string b (Printf.sprintf "  \"last_scrape_us\": %d,\n" t.last_ts);
  Buffer.add_string b
    (Printf.sprintf
       "  \"journal\": {\"emitted\": %d, \"retained\": %d, \"dropped\": %d},\n"
       t.jtotal t.jlen (journal_dropped t));
  (* series sorted by (name, rendered labels) — insertion-order free *)
  let keys =
    List.sort
      (fun (n1, l1, _) (n2, l2, _) ->
        let c = compare n1 n2 in
        if c <> 0 then c else compare (render_labels l1) (render_labels l2))
      (List.rev t.order)
  in
  Buffer.add_string b "  \"series\": [\n";
  List.iteri
    (fun i (name, labels, key) ->
      if i > 0 then Buffer.add_string b ",\n";
      let ss = Hashtbl.find t.stores key in
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %s, \"labels\": {%s}, \"type\": %s, \"stride\": %d, \"points\": ["
           (json_string name)
           (String.concat ", "
              (List.map (fun (k, v) -> json_string k ^ ": " ^ json_string v) labels))
           (json_string ss.ss_typ) ss.ss_stride);
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf
               "{\"ts\": %d, \"last\": %s, \"sum\": %s, \"min\": %s, \"max\": %s, \"n\": %d}"
               p.p_ts (render_float p.p_last) (render_float p.p_sum)
               (render_float p.p_min) (render_float p.p_max) p.p_count))
        (sstore_points ss);
      Buffer.add_string b "]}")
    keys;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"alerts\": [\n";
  List.iteri
    (fun i tr ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"ts\": %d, \"rule\": %s, \"from\": %s, \"to\": %s, \"value\": %s}"
           tr.tr_ts (json_string tr.tr_rule)
           (json_string (state_name tr.tr_from))
           (json_string (state_name tr.tr_to))
           (render_float tr.tr_value)))
    (transitions t);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"incidents\": [\n";
  List.iteri
    (fun i inc ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"rule\": %s, \"pending_us\": %d, \"firing_us\": %d, \
            \"resolved_us\": %d, \"peak\": %s, \"truncated\": %d, \"timeline\": [\n"
           (json_string inc.i_rule) inc.i_pending_us inc.i_firing_us
           inc.i_resolved_us (render_float inc.i_peak) inc.i_truncated);
      List.iteri
        (fun j e ->
          if j > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b
            (Printf.sprintf
               "      {\"ts\": %d, \"source\": %s, \"kind\": %s, \"actor\": %s, \"detail\": %s}"
               e.e_ts (json_string e.e_source) (json_string e.e_kind)
               (json_string e.e_actor) (json_string e.e_detail)))
        inc.i_timeline;
      Buffer.add_string b "\n    ]}")
    (incidents t);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* --- dashboard ----------------------------------------------------------- *)

let spark_glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline pts =
  let pts = if List.length pts > 32 then
      let n = List.length pts in
      List.filteri (fun i _ -> i >= n - 32) pts
    else pts
  in
  let vals = List.map (fun p -> p.p_last) pts in
  match (vals, vals) with
  | [], _ -> ""
  | _ ->
      let lo = List.fold_left min infinity vals in
      let hi = List.fold_left max neg_infinity vals in
      let span = hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let idx =
               if span <= 0.0 then 0
               else
                 let i = int_of_float ((v -. lo) /. span *. 7.0 +. 0.5) in
                 if i < 0 then 0 else if i > 7 then 7 else i
             in
             spark_glyphs.(idx))
           vals)

let cmp_name = function Gt -> ">" | Lt -> "<" | Ge -> ">=" | Le -> "<="

let fmt_us us =
  if us < 0 then "-"
  else Printf.sprintf "%.3fs" (float_of_int us /. 1e6)

let dashboard t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf
       "flight recorder: %d scrapes @ %s interval, %d series, journal %d events (%d dropped)\n"
       t.nscrapes (fmt_us t.ival) (List.length t.order) t.jtotal (journal_dropped t));
  let keys =
    List.sort
      (fun (n1, l1, _) (n2, l2, _) ->
        let c = compare n1 n2 in
        if c <> 0 then c else compare (render_labels l1) (render_labels l2))
      (List.rev t.order)
  in
  (* Series with any movement; recorded rules surface alongside raw ones. *)
  let active =
    List.filter
      (fun (_, _, key) ->
        let ss = Hashtbl.find t.stores key in
        match (sstore_oldest ss, sstore_newest ss) with
        | Some a, Some z ->
            a.p_last <> z.p_last
            || (match sstore_points ss with
               | [] -> false
               | ps ->
                   let mn = List.fold_left (fun m p -> min m p.p_min) infinity ps in
                   let mx = List.fold_left (fun m p -> max m p.p_max) neg_infinity ps in
                   mn <> mx)
        | _ -> false)
      keys
  in
  let shown = List.filteri (fun i _ -> i < 24) active in
  Buffer.add_string b "series (changing, first 24):\n";
  List.iter
    (fun (name, labels, key) ->
      let ss = Hashtbl.find t.stores key in
      let pts = sstore_points ss in
      let last = match sstore_newest ss with Some p -> p.p_last | None -> 0.0 in
      Buffer.add_string b
        (Printf.sprintf "  %-44s %s last=%s\n"
           (name ^ render_labels labels)
           (sparkline pts) (render_float last)))
    shown;
  if List.length active > List.length shown then
    Buffer.add_string b
      (Printf.sprintf "  (%d more changing series)\n"
         (List.length active - List.length shown));
  Buffer.add_string b "alerts:\n";
  List.iter
    (fun ar ->
      let fired =
        List.length (List.filter (fun ep -> ep.ep_rule = ar.ar_name && ep.ep_firing >= 0) t.episodes)
      in
      Buffer.add_string b
        (Printf.sprintf "  %-28s %-8s value=%s thr=%s%s for=%s clear=%s episodes=%d\n"
           ar.ar_name
           (state_name ar.ar_state)
           (render_float ar.ar_last) (cmp_name ar.ar_cmp) (render_float ar.ar_thr)
           (fmt_us ar.ar_for) (render_float ar.ar_clear) fired))
    (List.rev t.alerts);
  let incs = incidents t in
  Buffer.add_string b (Printf.sprintf "incidents (%d):\n" (List.length incs));
  List.iteri
    (fun i inc ->
      Buffer.add_string b
        (Printf.sprintf "  #%d %s pending=%s firing=%s resolved=%s peak=%s\n"
           (i + 1) inc.i_rule (fmt_us inc.i_pending_us) (fmt_us inc.i_firing_us)
           (fmt_us inc.i_resolved_us) (render_float inc.i_peak));
      List.iter
        (fun e ->
          Buffer.add_string b
            (Printf.sprintf "     %10s [%-10s] %-18s %-12s %s\n" (fmt_us e.e_ts)
               e.e_source e.e_kind e.e_actor e.e_detail))
        inc.i_timeline;
      if inc.i_truncated > 0 then
        Buffer.add_string b
          (Printf.sprintf "     ... (%d entries elided from the middle)\n" inc.i_truncated))
    incs;
  Buffer.contents b

(* --- rules text format --------------------------------------------------- *)

type token =
  | TId of string
  | TNum of float
  | TDur of int
  | TStr of string
  | TSym of char
  | TGe
  | TLe

exception Parse_error of string

let tokenize line =
  let n = String.length line in
  let pos = ref 0 in
  let toks = ref [] in
  let is_id_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') || c = ':' || c = '.' in
  while !pos < n do
    let c = line.[!pos] in
    if c = ' ' || c = '\t' then incr pos
    else if c = '#' then pos := n
    else if is_id_start c then begin
      let start = !pos in
      while !pos < n && is_id line.[!pos] do incr pos done;
      toks := TId (String.sub line start (!pos - start)) :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      while !pos < n && ((line.[!pos] >= '0' && line.[!pos] <= '9') || line.[!pos] = '.') do
        incr pos
      done;
      let num = float_of_string (String.sub line start (!pos - start)) in
      let sfx_start = !pos in
      while !pos < n && line.[!pos] >= 'a' && line.[!pos] <= 'z' do incr pos done;
      let sfx = String.sub line sfx_start (!pos - sfx_start) in
      let tok =
        match sfx with
        | "" -> TNum num
        | "s" -> TDur (int_of_float (num *. 1e6))
        | "ms" -> TDur (int_of_float (num *. 1e3))
        | "us" -> TDur (int_of_float num)
        | "m" -> TDur (int_of_float (num *. 60e6))
        | _ -> raise (Parse_error ("unknown duration unit '" ^ sfx ^ "'"))
      in
      toks := tok :: !toks
    end
    else if c = '"' then begin
      incr pos;
      let start = !pos in
      while !pos < n && line.[!pos] <> '"' do incr pos done;
      if !pos >= n then raise (Parse_error "unterminated string");
      toks := TStr (String.sub line start (!pos - start)) :: !toks;
      incr pos
    end
    else if c = '>' && !pos + 1 < n && line.[!pos + 1] = '=' then begin
      toks := TGe :: !toks;
      pos := !pos + 2
    end
    else if c = '<' && !pos + 1 < n && line.[!pos + 1] = '=' then begin
      toks := TLe :: !toks;
      pos := !pos + 2
    end
    else
      match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | '+' | '-' | '*' | '/'
      | '<' | '>' ->
          toks := TSym c :: !toks;
          incr pos
      | _ -> raise (Parse_error (Printf.sprintf "unexpected character '%c'" c))
  done;
  List.rev !toks

(* Recursive-descent over the token list; the state is a mutable cursor. *)
let parse_line line =
  let toks = ref (tokenize line) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of line")
    | t :: rest ->
        toks := rest;
        t
  in
  let expect_sym c =
    match next () with
    | TSym x when x = c -> ()
    | _ -> raise (Parse_error (Printf.sprintf "expected '%c'" c))
  in
  let ident what =
    match next () with
    | TId s -> s
    | _ -> raise (Parse_error ("expected " ^ what))
  in
  let number what =
    match next () with
    | TNum f -> f
    | _ -> raise (Parse_error ("expected " ^ what))
  in
  let duration what =
    match next () with
    | TDur d -> d
    | _ -> raise (Parse_error ("expected " ^ what ^ " (e.g. 5s, 500ms)"))
  in
  let selector_of name =
    let labels =
      match peek () with
      | Some (TSym '{') ->
          ignore (next ());
          let rec pairs acc =
            let k = ident "label name" in
            expect_sym '=';
            let v =
              match next () with
              | TStr s -> s
              | _ -> raise (Parse_error "expected quoted label value")
            in
            match next () with
            | TSym ',' -> pairs ((k, v) :: acc)
            | TSym '}' -> List.rev ((k, v) :: acc)
            | _ -> raise (Parse_error "expected ',' or '}'")
          in
          pairs []
      | _ -> []
    in
    { sel_name = name; sel_labels = labels }
  in
  let windowed_selector () =
    let name = ident "series name" in
    let sel = selector_of name in
    expect_sym '[';
    let w = duration "window" in
    expect_sym ']';
    (sel, w)
  in
  let rec expr () =
    let rec sum acc =
      match peek () with
      | Some (TSym '+') ->
          ignore (next ());
          sum (Add (acc, prod ()))
      | Some (TSym '-') ->
          ignore (next ());
          sum (Sub (acc, prod ()))
      | _ -> acc
    in
    sum (prod ())
  and prod () =
    let rec go acc =
      match peek () with
      | Some (TSym '*') ->
          ignore (next ());
          go (Mul (acc, atom ()))
      | Some (TSym '/') ->
          ignore (next ());
          go (Div (acc, atom ()))
      | _ -> acc
    in
    go (atom ())
  and atom () =
    match next () with
    | TNum f -> Const f
    | TSym '(' ->
        let e = expr () in
        expect_sym ')';
        e
    | TSym '-' -> Sub (Const 0.0, atom ())
    | TId "rate" ->
        expect_sym '(';
        let sel, w = windowed_selector () in
        expect_sym ')';
        Rate (sel, w)
    | TId "delta" ->
        expect_sym '(';
        let sel, w = windowed_selector () in
        expect_sym ')';
        Delta (sel, w)
    | TId "quantile" ->
        expect_sym '(';
        let q = number "quantile (0..1)" in
        expect_sym ',';
        let name = ident "series name" in
        let sel = selector_of name in
        expect_sym ')';
        Quantile (q, sel)
    | TId name -> Series (selector_of name)
    | _ -> raise (Parse_error "expected expression")
  in
  match peek () with
  | None -> `Blank
  | Some (TId "record") ->
      ignore (next ());
      let name = ident "rule name" in
      expect_sym '=';
      let e = expr () in
      if !toks <> [] then raise (Parse_error "trailing tokens after expression");
      `Record (name, e)
  | Some (TId "alert") ->
      ignore (next ());
      let name = ident "rule name" in
      (match next () with
      | TId "if" -> ()
      | _ -> raise (Parse_error "expected 'if'"));
      let e = expr () in
      let cmp =
        match next () with
        | TSym '>' -> Gt
        | TSym '<' -> Lt
        | TGe -> Ge
        | TLe -> Le
        | _ -> raise (Parse_error "expected comparison (< > <= >=)")
      in
      let thr = number "threshold" in
      let for_us = ref 0 in
      let clear = ref None in
      let rec opts () =
        match peek () with
        | Some (TId "for") ->
            ignore (next ());
            for_us := duration "for-duration";
            opts ()
        | Some (TId "clear") ->
            ignore (next ());
            clear := Some (number "clear threshold");
            opts ()
        | None -> ()
        | _ -> raise (Parse_error "expected 'for', 'clear', or end of line")
      in
      opts ();
      `Alert (name, e, cmp, thr, !for_us, !clear)
  | Some _ -> raise (Parse_error "expected 'record' or 'alert'")

let add_rules t text =
  let lines = String.split_on_char '\n' text in
  let parsed = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        match parse_line line with
        | `Blank -> ()
        | r -> parsed := r :: !parsed
        | exception Parse_error msg ->
            err := Some (Printf.sprintf "line %d: %s" (i + 1) msg))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      let rules = List.rev !parsed in
      List.iter
        (function
          | `Blank -> ()
          | `Record (name, e) -> record t ~name e
          | `Alert (name, e, cmp, thr, for_us, clear) ->
              alert t ~name ~for_us ?clear ~cmp ~threshold:thr e)
        rules;
      Ok (List.length rules)
