(** Campaign flight recorder: an in-sim time-series store, alert rules,
    and causal incident timelines over a {!Metrics} registry.

    The monitor never looks at wall time.  A {e scrape} is driven
    externally with an explicit sim-clock timestamp — the fleet/chaos
    runners call {!scrape} from a [Netsim.World] barrier, which fires
    only once every shard has drained all events at or before the
    barrier time.  Counter values at a barrier are order-independent
    sums over the executed-event multiset, so the same seeded run
    scrapes the same values regardless of shard count, and {!json} is
    byte-deterministic (the determinism suite asserts identity across
    runs {e and} across shard counts).

    Each scrape:
    + samples every registry series into a fixed-capacity ring with
      last/sum/min/max downsampling (when the ring fills, adjacent
      points merge pairwise and the time-stride doubles — capacity is
      bounded, resolution degrades gracefully);
    + evaluates {e recording rules} in declaration order, appending each
      result as a synthetic series (so later rules can reference it);
    + evaluates {e alert rules}: threshold + [for]-duration + hysteresis
      ([clear] threshold), advancing a pending → firing → resolved
      lifecycle and recording typed transitions.

    Components journal domain events ({!journal}) — wire-byte
    provenance, sanitizer verdicts, health transitions, cell
    escalations, rollout waves, supervisor restarts.  The incident
    correlator joins each firing episode with the journal window around
    it (and optionally the {!Trace} ring) into a causal timeline
    anchored at the first wire-provenance entry and truncated after the
    last containment (quarantine/rollback) event. *)

type t

val create :
  ?interval_us:int ->
  ?points:int ->
  ?journal_cap:int ->
  ?lookback_us:int ->
  Metrics.t ->
  t
(** [interval_us] (default 1s) is the intended scrape cadence — the
    monitor itself never schedules; runners read it via {!interval_us}
    to set their barrier.  [points] (default 512, rounded up to even) is
    the per-series ring capacity.  [journal_cap] (default 131072) bounds
    the domain-event journal (drop-oldest).  [lookback_us] (default
    [2 * interval_us]) is how far before an alert's pending edge the
    incident correlator searches for the causal anchor. *)

val registry : t -> Metrics.t
val interval_us : t -> int

val set_trace : t -> Trace.t option -> unit
(** Optional: join retained trace events (cats other than ["cpu"]/["mem"],
    which tick on the instruction clock) into incident timelines. *)

(** {1 Expressions} *)

type selector = {
  sel_name : string;
  sel_labels : (string * string) list;
      (** matched as a subset of the series' labels *)
}

type expr =
  | Const of float
  | Series of selector
      (** sum of current values over matching series (histograms
          contribute their observation count); 0 if none match *)
  | Rate of selector * int
      (** per-second increase over a trailing window (µs), from the
          store; clamps to the oldest retained point *)
  | Delta of selector * int  (** raw increase over a trailing window *)
  | Quantile of float * selector
      (** {!Metrics.quantile} over the first matching histogram scraped
          this round *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** x/0 = 0 — rates at t=0 stay quiet *)

type cmp = Gt | Lt | Ge | Le

val record : t -> name:string -> expr -> unit
(** Recording rule: evaluated each scrape (after raw sampling, in
    declaration order), appended to the store as gauge [name]. *)

val alert :
  t ->
  name:string ->
  ?for_us:int ->
  ?clear:float ->
  cmp:cmp ->
  threshold:float ->
  expr ->
  unit
(** Alert rule.  Breaching starts a pending episode; sustained breach
    for [for_us] (default 0: fire immediately) promotes it to firing; a
    pending episode whose value stops breaching cancels; a firing
    episode resolves only when the value crosses [clear] (default
    [threshold]) on the non-breaching side — hysteresis. *)

val add_rules : t -> string -> (int, string) result
(** Parse rules from text, one per line ([#] comments, blank lines ok):
    {v
record fleet_compromised_fraction = fleet_compromised_devices / fleet_devices
record compromise_rate = rate(fleet_compromises_total[10s])
alert compromise_wave if compromise_rate > 0.5 for 5s clear 0.05
alert slow_parse if quantile(0.99, parse_instructions) > 20000 for 2s
    v}
    Durations take [s]/[ms]/[us] suffixes; selectors may carry label
    matchers [name{k="v"}].  Returns the number of rules added, or
    [Error "line N: ..."] (no rules are added on error). *)

(** {1 Scraping} *)

val scrape : t -> now:int -> unit
(** Sample + evaluate at sim time [now] (µs).  Calls with [now] not
    beyond the last scrape are ignored (idempotent at a barrier). *)

val scrapes : t -> int
val last_scrape_us : t -> int  (** -1 before the first scrape *)

(** {1 Store queries} *)

type point = {
  p_ts : int;  (** µs of the newest scrape merged into this point *)
  p_last : float;
  p_sum : float;
  p_min : float;
  p_max : float;
  p_count : int;  (** scrapes merged *)
}

val points : t -> ?labels:(string * string) list -> string -> point list
(** Retained points (oldest first) for the series matching (name,
    labels) exactly; [] if unknown. *)

val value_at : t -> ?labels:(string * string) list -> string -> int -> float option
(** Last-observed value at or before a timestamp. *)

val rate_over :
  t -> ?labels:(string * string) list -> string -> now:int -> window_us:int -> float

val delta_over :
  t -> ?labels:(string * string) list -> string -> now:int -> window_us:int -> float

(** {1 Journal} *)

val journal :
  t ->
  ts:int ->
  source:string ->
  actor:string ->
  ?detail:string ->
  string ->
  unit
(** [journal t ~ts ~source ~actor kind] records a domain event.
    [source] names the emitting layer — ["net"], ["daemon"], ["health"],
    ["supervisor"] are device-scoped; ["cell"], ["rollout"], ["fleet"]
    are scope-wide (incident timelines include scope-wide events plus
    the anchor device's own).  Export order is by
    [(ts, actor, per-actor ordinal)] — deterministic across shard
    counts, which global emission order is not. *)

type entry = {
  e_ts : int;
  e_source : string;
  e_kind : string;
  e_actor : string;
  e_detail : string;
}

val journal_entries : t -> entry list  (** retained, in export order *)

val journal_emitted : t -> int
val journal_dropped : t -> int

(** {1 Alerts and incidents} *)

type alert_state = Inactive | Pending | Firing

val state_name : alert_state -> string

type transition = {
  tr_ts : int;
  tr_rule : string;
  tr_from : alert_state;
  tr_to : alert_state;
  tr_value : float;  (** rule expression value at the transition *)
}

val transitions : t -> transition list  (** chronological *)

val alert_states : t -> (string * alert_state) list
(** Current state per alert rule, declaration order. *)

type incident = {
  i_rule : string;
  i_pending_us : int;
  i_firing_us : int;
  i_resolved_us : int;  (** -1 while still firing at end of run *)
  i_peak : float;  (** most-breaching value over the episode *)
  i_timeline : entry list;
  i_truncated : int;  (** timeline entries elided from the middle *)
}

val incidents : t -> incident list
(** One incident per firing episode, chronological.  The timeline is
    anchored at the first wire-provenance journal entry in the lookback
    window (when present, it is the first entry) and truncated after the
    last quarantine/rollback entry (when present, it is the last). *)

(** {1 Export} *)

val json : t -> string
(** Byte-deterministic [monitor-v1] JSON: store (all series, all
    retained points), alert transitions, incidents. *)

val dashboard : t -> string
(** Rendered text dashboard: sparkline per series, alert table,
    incident narratives. *)
