type t = {
  counts : (int, int ref) Hashtbl.t;
  mutable total : int;
  mutable sink : (int -> unit) option;
}

let create () = { counts = Hashtbl.create 1024; total = 0; sink = None }

let set_sink t sink = t.sink <- sink

let record t pc =
  (match Hashtbl.find_opt t.counts pc with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts pc (ref 1));
  t.total <- t.total + 1;
  match t.sink with None -> () | Some f -> f pc

let total t = t.total
let distinct_pcs t = Hashtbl.length t.counts

let clear t =
  Hashtbl.reset t.counts;
  t.total <- 0

(* "parse_response+0x4c" and "parse_response+0x50" both bucket under
   "parse_response"; bare hex addresses stay as-is. *)
let base_symbol s =
  match String.index_opt s '+' with
  | Some i -> String.sub s 0 i
  | None -> s

let report t ~symbolize =
  let by_sym = Hashtbl.create 64 in
  Hashtbl.iter
    (fun pc n ->
      let sym = base_symbol (symbolize pc) in
      match Hashtbl.find_opt by_sym sym with
      | Some r -> r := !r + !n
      | None -> Hashtbl.add by_sym sym (ref !n))
    t.counts;
  let rows = Hashtbl.fold (fun sym n acc -> (sym, !n) :: acc) by_sym [] in
  List.sort
    (fun (sa, na) (sb, nb) ->
      if na <> nb then compare nb na else compare sa sb)
    rows

let folded t ~symbolize ?(root = "all") () =
  let b = Buffer.create 256 in
  List.iter
    (fun (sym, n) -> Buffer.add_string b (Printf.sprintf "%s;%s %d\n" root sym n))
    (report t ~symbolize);
  Buffer.contents b

let pp_flat ?top ~symbolize ppf t =
  let rows = report t ~symbolize in
  let rows =
    match top with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  let tot = float_of_int (max t.total 1) in
  Format.fprintf ppf "%10s  %6s  %s@." "insns" "%" "symbol";
  List.iter
    (fun (sym, n) ->
      Format.fprintf ppf "%10d  %5.1f%%  %s@." n
        (100.0 *. float_of_int n /. tot)
        sym)
    rows;
  Format.fprintf ppf "%10d  total (%d distinct pcs)@." t.total
    (Hashtbl.length t.counts)
