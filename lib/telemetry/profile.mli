(** Instruction-level profiler.

    The traced interpreters call {!record} with the program counter of
    every retired instruction; reporting buckets the raw pc counts by
    nearest symbol using a caller-supplied [symbolize] function (in
    practice [Exploit.Debugger.symbolize], which renders
    ["name+0x12"] or a bare hex address).  The ["+0x..."] offset suffix
    is stripped so all samples inside one function aggregate under its
    base symbol.

    Conservation invariant, asserted by the tests: the per-symbol counts
    of {!report} (and the folded lines of {!folded}) sum to {!total},
    which equals the number of instructions the CPU retired while the
    profiler was attached. *)

type t

val create : unit -> t
val record : t -> int -> unit  (** one retired instruction at this pc *)

val set_sink : t -> (int -> unit) option -> unit
(** Attach (or detach with [None]) a tap on the raw pc stream: the sink
    fires on every {!record}, before bucketing.  This is how downstream
    consumers that need the instruction stream but not the histogram —
    e.g. a fuzzer's edge-coverage map — feed off the profiler without a
    second instrumentation hook in the interpreters.  [None] by default;
    the cost when detached is one option check per retired
    instruction. *)

val total : t -> int  (** instructions recorded *)

val distinct_pcs : t -> int

val report : t -> symbolize:(int -> string) -> (string * int) list
(** Per-symbol instruction counts, sorted by count descending (ties by
    symbol name ascending). *)

val folded : t -> symbolize:(int -> string) -> ?root:string -> unit -> string
(** Flamegraph-ready folded-stack lines: ["root;symbol count\n"] per
    symbol (root defaults to ["all"]).  Feed to
    [flamegraph.pl] / speedscope as-is. *)

val pp_flat : ?top:int -> symbolize:(int -> string) -> Format.formatter -> t -> unit
(** Flat profile table: count, percentage, symbol; [top] rows (default
    all). *)

val clear : t -> unit
