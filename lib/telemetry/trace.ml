type arg = I of int | S of string | B of bool | F of float

type event = {
  ts : int;
  cat : string;
  track : string;
  name : string;
  dur : int;
  args : (string * arg) list;
}

(* Fixed-size ring: [start] indexes the oldest retained event, the next
   write lands at [(start + len) mod capacity].  Overwriting (rather
   than refusing) keeps the most recent window of a long run, which is
   what a human debugging an exploit delivery wants to see. *)
type t = {
  cap : int;
  ring : event array;
  mutable start : int;
  mutable len : int;
  mutable total : int;  (* events ever emitted *)
  mutable clock : int;  (* shared timeline clock, µs *)
}

let dummy = { ts = 0; cat = ""; track = ""; name = ""; dur = 0; args = [] }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    cap = capacity;
    ring = Array.make capacity dummy;
    start = 0;
    len = 0;
    total = 0;
    clock = 0;
  }

let capacity t = t.cap
let length t = t.len
let emitted t = t.total
let dropped t = t.total - t.len
let now t = t.clock
let set_now t ts = if ts > t.clock then t.clock <- ts

let emit t ?ts ?(dur = 0) ?(args = []) ~cat ~track name =
  let ts = match ts with Some ts -> ts | None -> t.clock in
  let e = { ts; cat; track; name; dur; args } in
  if t.len < t.cap then begin
    t.ring.((t.start + t.len) mod t.cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    t.ring.(t.start) <- e;
    t.start <- (t.start + 1) mod t.cap
  end;
  t.total <- t.total + 1

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.total <- 0;
  t.clock <- 0;
  Array.fill t.ring 0 t.cap dummy

let iter t f =
  for i = 0 to t.len - 1 do
    f t.ring.((t.start + i) mod t.cap)
  done

let events t = List.init t.len (fun i -> t.ring.((t.start + i) mod t.cap))

(* --- serialization ------------------------------------------------------ *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let arg_json = function
  | I n -> string_of_int n
  | S s -> json_string s
  | B b -> if b then "true" else "false"
  | F f -> Printf.sprintf "%.4f" f

let args_json args =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (json_string k) (arg_json v)) args)

(* Chrome trace-event format: one process (pid 1), one named thread per
   track, metadata events first.  Tracks get tids in first-appearance
   order over the retained events, so serialization depends only on the
   event sequence. *)
let to_chrome_json t =
  (* An overflowed ring silently lost its head; emit a synthetic marker at
     the truncation point so a consumer can tell a quiet window from a
     dropped one.  It rides on its own "ring" track and precedes the
     retained events both in tid assignment and in the stream. *)
  let marker =
    if dropped t > 0 then
      let ts = if t.len > 0 then t.ring.(t.start).ts else t.clock in
      [
        {
          ts;
          cat = "trace";
          track = "ring";
          name = "dropped_events";
          dur = 0;
          args = [ ("dropped", I (dropped t)); ("emitted", I t.total) ];
        };
      ]
    else []
  in
  let iter_all f =
    List.iter f marker;
    iter t f
  in
  let tids = Hashtbl.create 8 in
  let order = ref [] in
  iter_all (fun e ->
      if not (Hashtbl.mem tids e.track) then begin
        Hashtbl.add tids e.track (Hashtbl.length tids + 1);
        order := e.track :: !order
      end);
  let b = Buffer.create (256 * (t.len + 2)) in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n" in
  sep ();
  Buffer.add_string b
    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
     \"args\": {\"name\": \"connman-repro\"}}";
  List.iter
    (fun track ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
            %d, \"args\": {\"name\": %s}}"
           (Hashtbl.find tids track) (json_string track)))
    (List.rev !order);
  iter_all (fun e ->
      sep ();
      let tid = Hashtbl.find tids e.track in
      if e.dur > 0 then
        Buffer.add_string b
          (Printf.sprintf
             "  {\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"ts\": %d, \
              \"dur\": %d, \"pid\": 1, \"tid\": %d, \"args\": {%s}}"
             (json_string e.name) (json_string e.cat) e.ts e.dur tid
             (args_json e.args))
      else
        Buffer.add_string b
          (Printf.sprintf
             "  {\"name\": %s, \"cat\": %s, \"ph\": \"i\", \"s\": \"t\", \
              \"ts\": %d, \"pid\": 1, \"tid\": %d, \"args\": {%s}}"
             (json_string e.name) (json_string e.cat) e.ts tid
             (args_json e.args)));
  Buffer.add_string b
    (Printf.sprintf
       "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"emitted\": %d, \
        \"dropped\": %d}}\n"
       t.total (dropped t));
  Buffer.contents b

let pp_arg ppf (k, v) =
  let s =
    match v with
    | I n -> string_of_int n
    | S s -> s
    | B b -> string_of_bool b
    | F f -> Printf.sprintf "%.4f" f
  in
  Format.fprintf ppf "%s=%s" k s

let pp_event ppf e =
  Format.fprintf ppf "[%10d us] %-10s %-18s" e.ts e.track e.name;
  if e.dur > 0 then Format.fprintf ppf " dur=%dus" e.dur;
  List.iter (fun a -> Format.fprintf ppf " %a" pp_arg a) e.args

let pp ppf t =
  iter t (fun e -> Format.fprintf ppf "%a@." pp_event e);
  if dropped t > 0 then
    Format.fprintf ppf "(%d earlier events dropped by ring wrap-around)@."
      (dropped t)
