(** Structured event tracing over the whole simulation stack.

    A trace is a bounded ring buffer of typed events.  Layers emit into
    it under their own category ([cat]) and timeline lane ([track]):
    netsim, the daemons, and the supervisor stamp events with the
    deterministic sim clock (µs); the interpreters stamp theirs with the
    per-CPU retired-instruction counter offset from the moment the call
    began (one instruction rendered as one µs — see DESIGN.md's clock
    domains).  The buffer never grows: once full, the oldest event is
    overwritten and counted in {!dropped}, so tracing a long campaign
    keeps the most recent window.

    Everything here is deterministic: the same seeded run emits the same
    events in the same order, and {!to_chrome_json} serializes with a
    fixed field order, so identical seeds produce byte-identical JSON
    (the determinism tests assert exactly that).

    The instrumented code paths live beside — never inside — the hot
    interpreter loops: a disabled trace ([None] in the owning module)
    costs at most one branch on a cold path, and the CPU run loops are
    untouched (see the overhead contract in DESIGN.md). *)

type arg = I of int | S of string | B of bool | F of float
(** Event argument values.  Floats serialize as %.4f for determinism. *)

type event = {
  ts : int;  (** timestamp, µs on the shared timeline *)
  cat : string;  (** layer: "cpu", "mem", "net", "daemon", "supervisor" *)
  track : string;  (** timeline lane (Perfetto thread), e.g. "connmand" *)
  name : string;
  dur : int;  (** µs; 0 means an instant event *)
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 65536 events. *)

val capacity : t -> int
val length : t -> int  (** events currently retained *)

val emitted : t -> int  (** events ever emitted *)

val dropped : t -> int
(** [emitted - length]: events overwritten by ring wrap-around. *)

val now : t -> int
val set_now : t -> int -> unit
(** Advance the shared timeline clock (monotonic: earlier values are
    ignored).  The netsim layer calls this with [Sim.now] as events
    flow, so layers without their own clock inherit a current µs. *)

val emit :
  t ->
  ?ts:int ->
  ?dur:int ->
  ?args:(string * arg) list ->
  cat:string ->
  track:string ->
  string ->
  unit
(** [emit t ~cat ~track name] appends an event ([ts] defaults to
    {!now}), overwriting the oldest when the ring is full. *)

val events : t -> event list  (** oldest first *)

val clear : t -> unit

val to_chrome_json : t -> string
(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope),
    loadable in Perfetto / chrome://tracing.  Tracks become named
    threads of one process; instant events use phase ["i"], events with
    a duration phase ["X"].  Field order and float formatting are fixed:
    identical traces give identical bytes.

    If the ring overflowed ({!dropped} > 0), a synthetic
    [dropped_events] instant event (track ["ring"], cat ["trace"]) is
    emitted first, stamped at the oldest retained timestamp, with
    [dropped]/[emitted] args — so a consumer can tell a quiet window
    from a truncated one. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
(** Compact text timeline, one event per line. *)
