(* The regression corpus moved into the library (lib/fuzz/corpus.ml) so
   the codec-differential mode can use it as seed material; this shim
   keeps the historical test-side name alive. *)

let entries = Fuzz.Corpus.entries
