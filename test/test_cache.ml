(* Tests for the sharded TTL-aware DNS cache and its daemon integration. *)

module Cache = Dns.Cache
module Dnsproxy = Connman.Dnsproxy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let opt_int = Alcotest.(check (option int))

let test_insert_lookup () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:0x01020304;
  opt_int "hit" (Some 0x01020304) (Cache.lookup c ~now:10 "a.example");
  opt_int "miss" None (Cache.lookup c ~now:10 "b.example")

let test_ttl_expiry () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:1;
  opt_int "fresh at 59" (Some 1) (Cache.lookup c ~now:59 "a.example");
  opt_int "expired at 60" None (Cache.lookup c ~now:60 "a.example");
  (* Expired entries are pruned on lookup. *)
  check_int "size after prune" 0 (Cache.size c ~now:60)

let test_zero_ttl_never_cached () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:0 ~ipv4:1;
  opt_int "not cached" None (Cache.lookup c ~now:0 "a.example")

let test_replace_updates () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:1;
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:2;
  opt_int "latest wins" (Some 2) (Cache.lookup c ~now:1 "a.example");
  check_int "single entry" 1 (Cache.size c ~now:1)

(* Regression: re-inserting an existing key is a replacement, not an
   insertion — the seed counted both as insertions, so
   insertions - evictions no longer tracked table growth. *)
let test_replacement_counted_separately () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:60 ~ipv4:1;
  Cache.insert c ~now:0 ~name:"a.example" ~ttl:90 ~ipv4:2;
  Cache.insert c ~now:0 ~name:"b.example" ~ttl:60 ~ipv4:3;
  let s = Cache.stats c in
  check_int "insertions count new names only" 2 s.Cache.insertions;
  check_int "replacements counted apart" 1 s.Cache.replacements;
  check_int "growth = insertions - evictions" 2
    (s.Cache.insertions - s.Cache.evictions);
  check_int "two entries" 2 (Cache.size c ~now:0)

let test_capacity_eviction () =
  let c = Cache.create ~capacity:4 () in
  for i = 1 to 4 do
    (* Distinct expiries: entry 1 is closest to expiry. *)
    Cache.insert c ~now:0 ~name:(Printf.sprintf "h%d" i) ~ttl:(i * 10) ~ipv4:i
  done;
  Cache.insert c ~now:0 ~name:"h5" ~ttl:100 ~ipv4:5;
  check_int "capacity held" 4 (Cache.size c ~now:0);
  opt_int "soonest-expiry evicted" None (Cache.lookup c ~now:0 "h1");
  opt_int "newest present" (Some 5) (Cache.lookup c ~now:0 "h5");
  check_int "eviction counted" 1 (Cache.stats c).Cache.evictions

(* Capacity-boundary eviction order: victims leave in expiry order. *)
let test_eviction_order () =
  let c = Cache.create ~capacity:4 () in
  List.iter
    (fun (name, ttl) -> Cache.insert c ~now:0 ~name ~ttl ~ipv4:1)
    [ ("a", 40); ("b", 10); ("c", 30); ("d", 20) ];
  Cache.insert c ~now:0 ~name:"e" ~ttl:50 ~ipv4:1;
  opt_int "b evicted first" None (Cache.lookup c ~now:0 "b");
  Cache.insert c ~now:0 ~name:"f" ~ttl:60 ~ipv4:1;
  opt_int "d evicted second" None (Cache.lookup c ~now:0 "d");
  Cache.insert c ~now:0 ~name:"g" ~ttl:70 ~ipv4:1;
  opt_int "c evicted third" None (Cache.lookup c ~now:0 "c");
  opt_int "a survives" (Some 1) (Cache.lookup c ~now:0 "a");
  check_int "three evictions" 3 (Cache.stats c).Cache.evictions;
  check_int "capacity held" 4 (Cache.size c ~now:0)

(* Regression: a table full of expired entries must be swept, not
   evicted one-at-a-time — the seed charged capacity for dead entries
   and evicted a victim per insert. *)
let test_expired_swept_before_eviction () =
  let c = Cache.create ~capacity:4 () in
  for i = 1 to 4 do
    Cache.insert c ~now:0 ~name:(Printf.sprintf "dead%d" i) ~ttl:5 ~ipv4:i
  done;
  (* At t=10 every entry is past its TTL: the next insert reclaims all
     four in one sweep and evicts nothing live. *)
  Cache.insert c ~now:10 ~name:"fresh" ~ttl:60 ~ipv4:9;
  let s = Cache.stats c in
  check_int "all dead entries swept" 4 s.Cache.expired_sweeps;
  check_int "no live eviction" 0 s.Cache.evictions;
  check_int "occupancy reflects the sweep" 1 s.Cache.occupancy;
  opt_int "fresh entry present" (Some 9) (Cache.lookup c ~now:10 "fresh")

(* Lazy invalidation: stale heap nodes left by replacements must not
   confuse eviction (nor leak — compaction bounds them). *)
let test_replacement_churn_then_eviction () =
  let c = Cache.create ~capacity:4 () in
  Cache.insert c ~now:0 ~name:"a" ~ttl:100 ~ipv4:1;
  for i = 1 to 50 do
    Cache.insert c ~now:0 ~name:"a" ~ttl:(100 + i) ~ipv4:1
  done;
  List.iter
    (fun (name, ttl) -> Cache.insert c ~now:0 ~name ~ttl ~ipv4:2)
    [ ("b", 200); ("c", 300); ("d", 400) ];
  Cache.insert c ~now:0 ~name:"e" ~ttl:500 ~ipv4:3;
  (* a's live expiry is 150 — the minimum — despite 50 tombstones. *)
  opt_int "a evicted despite churn" None (Cache.lookup c ~now:0 "a");
  opt_int "b survives" (Some 2) (Cache.lookup c ~now:0 "b");
  let s = Cache.stats c in
  check_int "replacements" 50 s.Cache.replacements;
  check_int "one eviction" 1 s.Cache.evictions

let test_negative_cache () =
  let c = Cache.create () in
  Cache.insert_negative c ~now:0 ~name:"nope.example" ~ttl:30;
  check_bool "negative hit while fresh" true
    (Cache.find c ~now:29 "nope.example" = Cache.Negative_hit);
  opt_int "lookup answers None" None (Cache.lookup c ~now:29 "nope.example");
  check_bool "expired at ttl" true
    (Cache.find c ~now:30 "nope.example" = Cache.Miss);
  let s = Cache.stats c in
  check_int "negative hits counted" 2 s.Cache.negative_hits;
  check_int "not counted as positive hits" 0 s.Cache.hits;
  (* a positive insert over a negative entry replaces it *)
  Cache.insert_negative c ~now:40 ~name:"flap.example" ~ttl:30;
  Cache.insert c ~now:41 ~name:"flap.example" ~ttl:30 ~ipv4:7;
  opt_int "positive wins" (Some 7) (Cache.lookup c ~now:42 "flap.example")

let test_shard_distribution () =
  let c = Cache.create ~capacity:1024 ~shards:8 () in
  check_int "shard count" 8 (Cache.shard_count c);
  let n = 800 in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "host-%04d.shard.example" i in
    check_bool "shard_of in bounds" true
      (Cache.shard_of c name >= 0 && Cache.shard_of c name < 8);
    check_int "shard_of stable" (Cache.shard_of c name) (Cache.shard_of c name);
    Cache.insert c ~now:0 ~name ~ttl:1000 ~ipv4:i
  done;
  let occ =
    Array.map (fun (s : Cache.stats) -> s.Cache.occupancy) (Cache.shard_stats c)
  in
  check_int "entries all stored" n (Array.fold_left ( + ) 0 occ);
  Array.iteri
    (fun i o ->
      check_bool (Printf.sprintf "shard %d nonempty" i) true (o > 0);
      check_bool (Printf.sprintf "shard %d not pathological" i) true
        (o < n / 2))
    occ;
  (* aggregate stats = sum of shard stats *)
  let agg = Cache.stats c in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 (Cache.shard_stats c) in
  check_int "insertions aggregate" agg.Cache.insertions
    (sum (fun (s : Cache.stats) -> s.Cache.insertions))

let test_stats () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a" ~ttl:10 ~ipv4:1;
  ignore (Cache.lookup c ~now:1 "a");
  ignore (Cache.lookup c ~now:1 "b");
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "insertions" 1 s.Cache.insertions

let test_flush () =
  let c = Cache.create () in
  Cache.insert c ~now:0 ~name:"a" ~ttl:10 ~ipv4:1;
  Cache.flush c;
  check_int "empty" 0 (Cache.size c ~now:0);
  check_int "occupancy zero" 0 (Cache.stats c).Cache.occupancy;
  (* a flushed cache keeps working *)
  Cache.insert c ~now:0 ~name:"b" ~ttl:10 ~ipv4:2;
  opt_int "usable after flush" (Some 2) (Cache.lookup c ~now:1 "b")

(* --- differential check against a naive reference model --- *)

(* The reference mirrors the documented semantics with assoc-style
   scans: per-shard capacity, sweep-then-evict on insert, min
   (expires, seq) eviction, prune-on-expired-lookup.  Shard placement
   and per-shard capacity are taken from the real cache (capacity
   divisible by shards → uniform). *)
module Ref_model = struct
  type rentry = {
    value : int;
    negative : bool;
    expires : int;
    seq : int;
  }

  type t = {
    cap_per_shard : int;
    tables : (string, rentry) Hashtbl.t array;
    mutable next_seq : int;
    mutable hits : int;
    mutable misses : int;
    mutable negative_hits : int;
    mutable insertions : int;
    mutable replacements : int;
    mutable evictions : int;
    mutable expired_sweeps : int;
  }

  let create ~capacity ~shards =
    {
      cap_per_shard = capacity / shards;
      tables = Array.init shards (fun _ -> Hashtbl.create 16);
      next_seq = 0;
      hits = 0;
      misses = 0;
      negative_hits = 0;
      insertions = 0;
      replacements = 0;
      evictions = 0;
      expired_sweeps = 0;
    }

  let sweep m tbl ~now =
    let dead =
      Hashtbl.fold
        (fun name e acc -> if e.expires <= now then name :: acc else acc)
        tbl []
    in
    List.iter (Hashtbl.remove tbl) dead;
    m.expired_sweeps <- m.expired_sweeps + List.length dead

  let evict_min m tbl =
    let victim =
      Hashtbl.fold
        (fun name e best ->
          match best with
          | Some (_, b) when (b.expires, b.seq) <= (e.expires, e.seq) -> best
          | _ -> Some (name, e))
        tbl None
    in
    match victim with
    | Some (name, _) ->
        Hashtbl.remove tbl name;
        m.evictions <- m.evictions + 1
    | None -> ()

  let store m ~shard ~now ~name ~ttl ~value ~negative =
    if ttl > 0 then begin
      let tbl = m.tables.(shard) in
      sweep m tbl ~now;
      if Hashtbl.mem tbl name then begin
        m.replacements <- m.replacements + 1;
        let seq = m.next_seq in
        m.next_seq <- seq + 1;
        Hashtbl.replace tbl name { value; negative; expires = now + ttl; seq }
      end
      else begin
        if Hashtbl.length tbl >= m.cap_per_shard then evict_min m tbl;
        if Hashtbl.length tbl < m.cap_per_shard then begin
          m.insertions <- m.insertions + 1;
          let seq = m.next_seq in
          m.next_seq <- seq + 1;
          Hashtbl.replace tbl name { value; negative; expires = now + ttl; seq }
        end
      end
    end

  let find m ~shard ~now name =
    let tbl = m.tables.(shard) in
    match Hashtbl.find_opt tbl name with
    | Some e when e.expires > now ->
        if e.negative then begin
          m.negative_hits <- m.negative_hits + 1;
          Cache.Negative_hit
        end
        else begin
          m.hits <- m.hits + 1;
          Cache.Hit e.value
        end
    | Some _ ->
        Hashtbl.remove tbl name;
        m.misses <- m.misses + 1;
        Cache.Miss
    | None ->
        m.misses <- m.misses + 1;
        Cache.Miss

  let size m ~now =
    Array.fold_left
      (fun acc tbl ->
        Hashtbl.fold
          (fun _ e n -> if e.expires > now then n + 1 else n)
          tbl acc)
      0 m.tables
end

let test_differential_vs_reference () =
  let capacity = 32 and shards = 4 in
  let c = Cache.create ~capacity ~shards () in
  let m = Ref_model.create ~capacity ~shards in
  let rng = Memsim.Rng.create 0xD1FF in
  let name_of i = Printf.sprintf "n%02d.example" i in
  let now = ref 0 in
  let mismatches = ref 0 in
  for step = 1 to 5_000 do
    if Memsim.Rng.int rng 10 = 0 then now := !now + Memsim.Rng.int rng 4;
    let name = name_of (Memsim.Rng.int rng 48) in
    let shard = Cache.shard_of c name in
    (match Memsim.Rng.int rng 20 with
    | 0 | 1 ->
        let ttl = Memsim.Rng.int rng 25 in
        (* exercises the ttl=0 rejection too *)
        Cache.insert_negative c ~now:!now ~name ~ttl;
        Ref_model.store m ~shard ~now:!now ~name ~ttl ~value:0 ~negative:true
    | 2 ->
        Cache.remove c name;
        Hashtbl.remove m.Ref_model.tables.(shard) name
    | n when n < 10 ->
        let ttl = Memsim.Rng.int rng 25 and v = step in
        Cache.insert c ~now:!now ~name ~ttl ~ipv4:v;
        Ref_model.store m ~shard ~now:!now ~name ~ttl ~value:v ~negative:false
    | _ ->
        let a = Cache.find c ~now:!now name in
        let b = Ref_model.find m ~shard ~now:!now name in
        if a <> b then incr mismatches);
    if Cache.size c ~now:!now <> Ref_model.size m ~now:!now then
      incr mismatches
  done;
  check_int "no lookup/size divergence over 5k ops" 0 !mismatches;
  let s = Cache.stats c in
  check_int "hits agree" m.Ref_model.hits s.Cache.hits;
  check_int "misses agree" m.Ref_model.misses s.Cache.misses;
  check_int "negative hits agree" m.Ref_model.negative_hits
    s.Cache.negative_hits;
  check_int "insertions agree" m.Ref_model.insertions s.Cache.insertions;
  check_int "replacements agree" m.Ref_model.replacements s.Cache.replacements;
  check_int "evictions agree" m.Ref_model.evictions s.Cache.evictions;
  check_int "sweeps agree" m.Ref_model.expired_sweeps s.Cache.expired_sweeps

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"capacity bound holds under churn" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 100)
            (pair (string_size ~gen:(char_range 'a' 'f') (return 3)) (int_range 1 50))))
    (fun inserts ->
      let c = Cache.create ~capacity:8 () in
      List.iteri
        (fun i (name, ttl) -> Cache.insert c ~now:i ~name ~ttl ~ipv4:i)
        inserts;
      Cache.size c ~now:0 <= 8)

let prop_fresh_entries_always_hit =
  QCheck.Test.make ~name:"a fresh insert always hits before expiry" ~count:200
    QCheck.(make Gen.(pair (int_range 1 1000) (int_range 0 2000)))
    (fun (ttl, dt) ->
      let c = Cache.create () in
      Cache.insert c ~now:100 ~name:"x" ~ttl ~ipv4:42;
      let hit = Cache.lookup c ~now:(100 + dt) "x" in
      if dt < ttl then hit = Some 42 else hit = None)

(* --- daemon integration --- *)

let lookup_name = Dns.Name.of_string "ipv4.connman.net"

let test_daemon_ttl_expiry () =
  let d = Dnsproxy.create Dnsproxy.default_config in
  let query = Dnsproxy.make_query d lookup_name in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup_name ~ttl:30 ~ipv4:0x7F000001 ])
  in
  (match Dnsproxy.handle_response d wire with
  | Dnsproxy.Cached 1 -> ()
  | other -> Alcotest.failf "parse: %a" Dnsproxy.pp_disposition other);
  check_bool "fresh" true (Dnsproxy.cache_lookup d lookup_name = Some 0x7F000001);
  Dnsproxy.tick d 29;
  check_bool "still fresh at 29s" true
    (Dnsproxy.cache_lookup d lookup_name <> None);
  Dnsproxy.tick d 2;
  check_bool "expired at 31s" true (Dnsproxy.cache_lookup d lookup_name = None);
  let s = Dnsproxy.cache_stats d in
  check_bool "stats flow" true (s.Cache.hits >= 2 && s.Cache.misses >= 1)

let nxdomain_wire query =
  Dns.Packet.encode
    {
      Dns.Packet.header =
        {
          query.Dns.Packet.header with
          Dns.Packet.qr = true;
          Dns.Packet.ra = true;
          Dns.Packet.rcode = Dns.Packet.NXDomain;
        };
      questions = query.Dns.Packet.questions;
      answers = [];
      authorities = [];
      additionals = [];
    }

let test_daemon_negative_caching () =
  let d = Dnsproxy.create Dnsproxy.default_config in
  let absent = Dns.Name.of_string "no-such.connman.net" in
  let q = Dnsproxy.make_query d absent in
  (match Dnsproxy.handle_response d (nxdomain_wire q) with
  | Dnsproxy.Dropped _ -> ()
  | other -> Alcotest.failf "nxdomain: %a" Dnsproxy.pp_disposition other);
  check_bool "negatively cached" true
    (Dnsproxy.cache_find d absent = Cache.Negative_hit);
  check_bool "cache_lookup answers None" true
    (Dnsproxy.cache_lookup d absent = None);
  check_bool "daemon still alive" true (Dnsproxy.alive d);
  Dnsproxy.tick d (Dnsproxy.negative_ttl + 1);
  check_bool "negative entry expires" true
    (Dnsproxy.cache_find d absent = Cache.Miss);
  let s = Dnsproxy.cache_stats d in
  check_bool "negative hit counted" true (s.Cache.negative_hits >= 1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache"
    [
      ( "unit",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "zero ttl" `Quick test_zero_ttl_never_cached;
          Alcotest.test_case "replace" `Quick test_replace_updates;
          Alcotest.test_case "replacement counted separately" `Quick
            test_replacement_counted_separately;
          Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "expired swept before eviction" `Quick
            test_expired_swept_before_eviction;
          Alcotest.test_case "lazy invalidation under churn" `Quick
            test_replacement_churn_then_eviction;
          Alcotest.test_case "negative cache" `Quick test_negative_cache;
          Alcotest.test_case "shard distribution" `Quick test_shard_distribution;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "flush" `Quick test_flush;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sharded cache agrees with naive model" `Quick
            test_differential_vs_reference;
        ] );
      ("properties", [ qt prop_capacity_never_exceeded; qt prop_fresh_entries_always_hit ]);
      ( "daemon integration",
        [
          Alcotest.test_case "ttl drives expiry" `Quick test_daemon_ttl_expiry;
          Alcotest.test_case "nxdomain negatively cached" `Quick
            test_daemon_negative_caching;
        ] );
    ]
