(* Determinism and supervision tests: identical seeds must give
   bit-identical fault traces, supervisor schedules, and chaos-campaign
   reports; the supervisor must back off, reset, and give up exactly as
   its policy says. *)

module W = Netsim.World
module Ip = Netsim.Ip
module Sim = Netsim.Sim
module F = Netsim.Faults
module Sup = Core.Supervisor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- seed determinism of the impairment layer --- *)

(* Run one seeded world under a policy: a sends 40 datagrams to b over
   2ms, the trace records every delivery as (time, payload). *)
let fault_trace ~seed policy =
  let w = W.create ~seed () in
  let lan = W.add_lan w ~name:"lan" in
  W.set_lan_policy w lan policy;
  let a = W.add_host w ~name:"a" in
  W.set_host_ip a (Some (Ip.of_string "10.0.0.1"));
  W.attach a lan;
  let b = W.add_host w ~name:"b" in
  W.set_host_ip b (Some (Ip.of_string "10.0.0.2"));
  W.attach b lan;
  let trace = ref [] in
  W.on_udp b ~port:9 (fun ctx d ->
      trace := (Sim.now (W.sim ctx.W.world), d.W.payload) :: !trace);
  for i = 1 to 40 do
    Sim.schedule (W.sim w) ~delay:(i * 50) (fun _ ->
        W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9
          (Printf.sprintf "pkt-%02d" i))
  done;
  ignore (W.run w);
  (List.rev !trace, W.stats w)

let impairment_policies =
  [
    ("default", F.default);
    ("lossy", F.lossy 0.4);
    ( "duplicating",
      { F.default with F.duplicate = 0.5; latency = F.Jitter { base = 300; jitter = 250 } } );
    ("corrupting", { F.default with F.corrupt = 0.5 });
    ("reordering", { F.default with F.reorder = 0.7; reorder_window_us = 2_000 });
    ("flapping", { F.default with F.flaps = [ (400, 900); (1_500, 1_600) ] }) ;
  ]

let test_same_seed_same_trace () =
  List.iter
    (fun (name, policy) ->
      let t1, s1 = fault_trace ~seed:42 policy in
      let t2, s2 = fault_trace ~seed:42 policy in
      check_bool (name ^ ": identical delivery traces") true (t1 = t2);
      check_bool (name ^ ": identical per-reason stats") true (s1 = s2))
    impairment_policies

let test_different_seed_different_trace () =
  (* Not a guarantee for every pair of seeds, but these two must differ
     if the rng is actually driving the impairments. *)
  let t1, _ = fault_trace ~seed:1 (F.lossy 0.4) in
  let t2, _ = fault_trace ~seed:2 (F.lossy 0.4) in
  check_bool "different seeds diverge" true (t1 <> t2)

(* --- supervisor --- *)

(* A daemon the test can kill at will. *)
module Fake_daemon = struct
  type t = { mutable up : bool; mutable boots : int }

  let kind = "fake"
  let alive t = t.up

  let restart t =
    t.boots <- t.boots + 1;
    t.up <- true
end

let fake () = { Fake_daemon.up = true; boots = 0 }

let exact_backoff_policy =
  {
    Sup.backoff =
      { Sup.initial_us = 100_000; multiplier = 2.0; max_us = 350_000; jitter = 0.0 };
    burst = 10;
    window_us = 1_000_000_000;
  }

let test_backoff_schedule_exact () =
  let sim = Sim.create ~seed:5 () in
  let d = fake () in
  let sup =
    Sup.supervise ~policy:exact_backoff_policy sim (module Fake_daemon) d
  in
  let kill_at delay =
    Sim.schedule sim ~delay (fun _ ->
        d.Fake_daemon.up <- false;
        Sup.notify sup)
  in
  d.Fake_daemon.up <- false;
  Sup.notify sup;
  kill_at 1_000_000;
  kill_at 2_000_000;
  ignore (Sim.run sim);
  let expected =
    [
      (0, Sup.Crash_detected 1);
      (0, Sup.Restart_scheduled 100_000);
      (100_000, Sup.Restarted);
      (1_000_000, Sup.Crash_detected 2);
      (1_000_000, Sup.Restart_scheduled 200_000);
      (1_200_000, Sup.Restarted);
      (2_000_000, Sup.Crash_detected 3);
      (* 400_000 is clamped to the 350_000 ceiling *)
      (2_000_000, Sup.Restart_scheduled 350_000);
      (2_350_000, Sup.Restarted);
    ]
  in
  Alcotest.(check int) "event count" (List.length expected)
    (List.length (Sup.events sup));
  List.iter2
    (fun (at, kind) (e : Sup.event) ->
      check_int "event time" at e.Sup.at;
      check_bool "event kind" true (kind = e.Sup.kind))
    expected (Sup.events sup);
  check_int "restarts" 3 (Sup.restarts sup);
  check_int "boots reached the daemon" 3 d.Fake_daemon.boots;
  check_bool "still watching" true (Sup.state sup = `Watching)

let test_backoff_resets_after_quiet_window () =
  let sim = Sim.create ~seed:5 () in
  let d = fake () in
  let policy = { exact_backoff_policy with Sup.window_us = 500_000 } in
  let sup = Sup.supervise ~policy sim (module Fake_daemon) d in
  d.Fake_daemon.up <- false;
  Sup.notify sup;
  (* A healthy check after the crash has aged out of the window resets
     the backoff to its initial delay. *)
  Sim.schedule sim ~delay:700_000 (fun _ -> Sup.notify sup);
  Sim.schedule sim ~delay:800_000 (fun _ ->
      d.Fake_daemon.up <- false;
      Sup.notify sup);
  ignore (Sim.run sim);
  let scheduled =
    List.filter_map
      (fun (e : Sup.event) ->
        match e.Sup.kind with Sup.Restart_scheduled d -> Some d | _ -> None)
      (Sup.events sup)
  in
  Alcotest.(check (list int)) "second crash starts over at the initial delay"
    [ 100_000; 100_000 ] scheduled

let test_jitter_is_seed_deterministic () =
  let run seed =
    let sim = Sim.create ~seed () in
    let d = fake () in
    let policy =
      {
        exact_backoff_policy with
        Sup.backoff = { exact_backoff_policy.Sup.backoff with Sup.jitter = 0.5 };
      }
    in
    let sup = Sup.supervise ~policy sim (module Fake_daemon) d in
    for i = 1 to 3 do
      Sim.schedule sim ~delay:(i * 1_000_000) (fun _ ->
          d.Fake_daemon.up <- false;
          Sup.notify sup)
    done;
    ignore (Sim.run sim);
    List.map (fun (e : Sup.event) -> (e.Sup.at, e.Sup.kind)) (Sup.events sup)
  in
  check_bool "same seed, same jittered schedule" true (run 7 = run 7);
  check_bool "jitter draws from the sim rng" true (run 7 <> run 8)

let test_crash_loop_gives_up () =
  let sim = Sim.create ~seed:5 () in
  let d = fake () in
  let policy = { exact_backoff_policy with Sup.burst = 2 } in
  let sup = ref None in
  let s =
    (* Re-kill the daemon the instant it restarts: a crash loop. *)
    Sup.supervise ~policy sim
      ~on_event:(fun e ->
        match e.Sup.kind with
        | Sup.Restarted ->
            d.Fake_daemon.up <- false;
            Option.iter Sup.notify !sup
        | _ -> ())
      (module Fake_daemon) d
  in
  sup := Some s;
  d.Fake_daemon.up <- false;
  Sup.notify s;
  ignore (Sim.run sim);
  check_bool "gave up" true (Sup.gave_up s);
  check_bool "terminal state" true (Sup.state s = `Gave_up);
  check_int "crashes observed" 3 (Sup.crashes s);
  check_int "restarts before giving up" 2 (Sup.restarts s);
  check_bool "last event is Gave_up" true
    (match List.rev (Sup.events s) with
    | { Sup.kind = Sup.Gave_up; _ } :: _ -> true
    | _ -> false);
  (* Further notifications are ignored — the loop is dead for good. *)
  Sup.notify s;
  ignore (Sim.run sim);
  check_int "no more restarts" 2 (Sup.restarts s)

let test_revive_after_give_up () =
  let sim = Sim.create ~seed:5 () in
  let d = fake () in
  let policy = { exact_backoff_policy with Sup.burst = 2 } in
  let sup = ref None in
  let crash_loop = ref true in
  let s =
    (* Re-kill on restart until the loop is "fixed" out of band. *)
    Sup.supervise ~policy sim
      ~on_event:(fun e ->
        match e.Sup.kind with
        | Sup.Restarted when !crash_loop ->
            d.Fake_daemon.up <- false;
            Option.iter Sup.notify !sup
        | _ -> ())
      (module Fake_daemon) d
  in
  sup := Some s;
  d.Fake_daemon.up <- false;
  Sup.notify s;
  ignore (Sim.run sim);
  check_bool "crash loop tripped the burst limit" true (Sup.gave_up s);
  check_bool "daemon left dead" false d.Fake_daemon.up;
  let restarts_before = Sup.restarts s in
  (* The underlying fault is repaired (reimage/quarantine): revive
     restores supervision and restarts the dead daemon immediately. *)
  crash_loop := false;
  Sup.revive s;
  check_bool "watching again" true (Sup.state s = `Watching);
  check_bool "daemon restarted by revive" true d.Fake_daemon.up;
  check_int "revive restart counted" (restarts_before + 1) (Sup.restarts s);
  (match List.rev (Sup.events s) with
  | { Sup.kind = Sup.Restarted; _ } :: { Sup.kind = Sup.Revived; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected trailing events [...; Revived; Restarted]");
  (* Supervision is genuinely live again, and the crash history was
     cleared: a later crash restarts at the initial backoff delay. *)
  Sim.schedule sim ~delay:1_000_000 (fun _ ->
      d.Fake_daemon.up <- false;
      Sup.notify s);
  ignore (Sim.run sim);
  check_bool "restarted after a post-revive crash" true d.Fake_daemon.up;
  check_bool "still watching" true (Sup.state s = `Watching);
  let scheduled =
    List.filter_map
      (fun (e : Sup.event) ->
        match e.Sup.kind with Sup.Restart_scheduled d -> Some d | _ -> None)
      (Sup.events s)
  in
  check_int "post-revive backoff restarted at the initial delay" 100_000
    (List.nth scheduled (List.length scheduled - 1))

let test_watch_is_bounded () =
  let sim = Sim.create ~seed:5 () in
  let d = fake () in
  let sup = Sup.supervise ~policy:exact_backoff_policy sim (module Fake_daemon) d in
  Sup.watch sup ~every_us:1_000 ~rounds:5;
  Sim.schedule sim ~delay:2_500 (fun _ -> d.Fake_daemon.up <- false);
  let events = Sim.run sim in
  (* The polling watchdog notices the crash and restarts the daemon, and
     the event loop still drains (5 polls + 1 restart + 1 kill). *)
  check_bool "daemon restarted by polling" true d.Fake_daemon.up;
  check_int "restart happened once" 1 (Sup.restarts sup);
  check_int "bounded event count" 7 events

(* --- retry policy --- *)

let test_retry_fixed_exhausts () =
  let sim = Sim.create ~seed:1 () in
  let attempts = ref [] in
  let exhausted = ref false in
  Sup.Retry.run sim
    (Sup.Retry.fixed ~attempts:3 ~timeout_us:1_000)
    ~attempt:(fun i -> attempts := (i, Sim.now sim) :: !attempts)
    ~still_needed:(fun () -> true)
    ~on_exhausted:(fun () -> exhausted := true)
    ();
  ignore (Sim.run sim);
  Alcotest.(check (list (pair int int)))
    "three attempts at fixed timeouts"
    [ (0, 0); (1, 1_000); (2, 2_000) ]
    (List.rev !attempts);
  check_bool "exhaustion reported" true !exhausted

let test_retry_stops_when_answered () =
  let sim = Sim.create ~seed:1 () in
  let count = ref 0 in
  let answered = ref false in
  Sup.Retry.run sim
    (Sup.Retry.fixed ~attempts:5 ~timeout_us:1_000)
    ~attempt:(fun _ -> incr count)
    ~still_needed:(fun () -> not !answered)
    ();
  (* The "response" lands between the second and third attempt. *)
  Sim.schedule sim ~delay:1_500 (fun _ -> answered := true);
  ignore (Sim.run sim);
  check_int "stopped after the answer" 2 !count

let test_retry_exponential_backoff () =
  let sim = Sim.create ~seed:1 () in
  let times = ref [] in
  Sup.Retry.run sim
    (Sup.Retry.exponential ~attempts:4 ~timeout_us:1_000 ~max_timeout_us:3_000 ())
    ~attempt:(fun _ -> times := Sim.now sim :: !times)
    ~still_needed:(fun () -> true)
    ();
  ignore (Sim.run sim);
  (* timeouts 1000, 2000, then 4000 clamped to 3000 *)
  Alcotest.(check (list int)) "backed-off attempt times"
    [ 0; 1_000; 3_000; 6_000 ]
    (List.rev !times)

(* --- the device runs on the shared retry policy --- *)

let test_device_retransmits_on_silence () =
  let w = W.create ~seed:3 () in
  let lan = W.add_lan w ~name:"lan" in
  let device =
    Core.Device.create w ~name:"dev"
      ~config:
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch = Loader.Arch.X86;
          profile = Defense.Profile.wx;
          boot_seed = 3;
          diversity_seed = None;
        }
  in
  W.attach (Core.Device.host device) lan;
  W.set_host_ip (Core.Device.host device) (Some (Ip.of_string "10.0.0.2"));
  (* DNS points at an address nobody owns: every query vanishes, so
     every timeout must fire a retransmission. *)
  W.set_host_dns (Core.Device.host device) (Some (Ip.of_string "10.0.0.9"));
  Core.Device.lookup_with_retry device "ipv4.connman.net" ~retries:2
    ~timeout_us:1_000_000;
  ignore (W.run w);
  let retries =
    List.filter
      (fun l ->
        String.length l >= 6
        && String.sub l 0 6 = "lookup"
        &&
        let rec has_retry i =
          i + 8 <= String.length l
          && (String.sub l i 8 = "retrying" || has_retry (i + 1))
        in
        has_retry 0)
      (Core.Device.events device)
  in
  check_int "two retransmissions logged" 2 (List.length retries);
  check_int "three queries hit the wire" 3 (W.stats w).W.no_route

(* --- daemon restart hooks (the supervisor's adaptation targets) --- *)

let test_dnsmasq_restart_revives () =
  let module D = Dnsmasq.Daemon in
  let d =
    D.create
      { D.patched = false; arch = Loader.Arch.X86;
        profile = Defense.Profile.wx; boot_seed = 17 }
  in
  let q = D.make_query d (Dns.Name.of_string "upstream.example") in
  let wire =
    Dns.Craft.hostile_response ~query:q
      ~raw_name:(Dns.Craft.dos_name ~size:8192) ()
  in
  (match D.handle_response d wire with
  | D.Crashed _ -> ()
  | other ->
      Alcotest.failf "expected a crash, got %a" D.pp_disposition other);
  check_bool "dead after DoS" false (D.alive d);
  let sim = Sim.create ~seed:17 () in
  let sup =
    Sup.supervise ~policy:exact_backoff_policy sim (module Sup.Dnsmasq_daemon) d
  in
  Sup.notify sup;
  ignore (Sim.run sim);
  check_bool "supervisor revived dnsmasq" true (D.alive d);
  check_int "one restart" 1 (Sup.restarts sup)

(* --- the chaos campaign --- *)

let test_chaos_campaign_reproducible () =
  let r1 = Core.Experiments.chaos_campaign ~seed:5 ~smoke:true () in
  let r2 = Core.Experiments.chaos_campaign ~seed:5 ~smoke:true () in
  Alcotest.(check string)
    "same seed serializes to identical bytes"
    (Core.Experiments.chaos_json r1)
    (Core.Experiments.chaos_json r2)

let test_chaos_campaign_results () =
  let r = Core.Experiments.chaos_campaign ~seed:1 ~smoke:true () in
  (* The paper's DoS on a clean network is a crash loop: the supervisor
     must detect it and give up (systemd's StartLimitBurst behaviour). *)
  let dos_clean =
    List.find
      (fun (row : Core.Experiments.chaos_row) ->
        row.Core.Experiments.cell = "DoS" && row.Core.Experiments.schedule = "clean")
      r.Core.Experiments.chaos_rows
  in
  check_bool "DoS/clean trips the crash-loop detector" true
    dos_clean.Core.Experiments.gave_up;
  check_bool "crashes exceeded the burst limit" true
    (dos_clean.Core.Experiments.crashes > dos_clean.Core.Experiments.restarts);
  check_bool "a DoS is not a compromise" false
    dos_clean.Core.Experiments.compromised;
  (* Exploit delivery must degrade with link loss (endpoints compared:
     the lossless level can't do worse than 90% loss). *)
  let hits loss =
    let p =
      List.find
        (fun (p : Core.Experiments.sweep_point) ->
          p.Core.Experiments.sweep_loss = loss)
        r.Core.Experiments.chaos_sweep
    in
    p.Core.Experiments.sweep_hits
  in
  check_bool "delivery degrades with loss" true (hits 0.0 > hits 0.9);
  check_int "clean network delivers every exploit" 3 (hits 0.0)

let () =
  Alcotest.run "chaos"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_same_trace;
          Alcotest.test_case "different seed diverges" `Quick
            test_different_seed_different_trace;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "exact backoff schedule" `Quick
            test_backoff_schedule_exact;
          Alcotest.test_case "backoff resets after quiet window" `Quick
            test_backoff_resets_after_quiet_window;
          Alcotest.test_case "jitter is seed-deterministic" `Quick
            test_jitter_is_seed_deterministic;
          Alcotest.test_case "crash loop gives up" `Quick
            test_crash_loop_gives_up;
          Alcotest.test_case "revive clears a give-up" `Quick
            test_revive_after_give_up;
          Alcotest.test_case "bounded watch polling" `Quick
            test_watch_is_bounded;
        ] );
      ( "retry",
        [
          Alcotest.test_case "fixed policy exhausts" `Quick
            test_retry_fixed_exhausts;
          Alcotest.test_case "stops when answered" `Quick
            test_retry_stops_when_answered;
          Alcotest.test_case "exponential backoff" `Quick
            test_retry_exponential_backoff;
          Alcotest.test_case "device retransmits on silence" `Quick
            test_device_retransmits_on_silence;
        ] );
      ( "daemon lifecycle",
        [
          Alcotest.test_case "dnsmasq restart revives" `Quick
            test_dnsmasq_restart_revives;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "reproducible json" `Quick
            test_chaos_campaign_reproducible;
          Alcotest.test_case "paper-relevant results" `Quick
            test_chaos_campaign_results;
        ] );
    ]
