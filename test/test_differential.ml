(* Differential testing of both interpreters against an OCaml reference
   evaluator: random straight-line arithmetic programs are generated as
   instruction lists, executed on the simulated CPU, and compared
   register-for-register against a pure-OCaml model of the same
   semantics.  This is the strongest evidence that "the machine" behaves
   like a machine. *)

module Mem = Memsim.Memory
module Word = Memsim.Word
module O = Machine.Outcome

let no_kernel _ _ = O.Stop (O.Aborted "unexpected syscall")

(* ------------------------------------------------------------------ *)
(* x86                                                                  *)
(* ------------------------------------------------------------------ *)

module X86_ref = struct
  open Isa_x86.Insn

  (* Reference state: 8 registers; only register-to-register data
     operations are modelled (the generator emits nothing else). *)
  type t = int array

  let exec (st : t) = function
    | Mov_ri (r, i) -> st.(reg_index r) <- Word.of_int i
    | Mov (Reg d, Reg s) -> st.(reg_index d) <- st.(reg_index s)
    | Add (Reg d, Reg s) ->
        st.(reg_index d) <- Word.add st.(reg_index d) st.(reg_index s)
    | Add_i (Reg d, i) -> st.(reg_index d) <- Word.add st.(reg_index d) i
    | Sub (Reg d, Reg s) ->
        st.(reg_index d) <- Word.sub st.(reg_index d) st.(reg_index s)
    | Sub_i (Reg d, i) -> st.(reg_index d) <- Word.sub st.(reg_index d) i
    | And (Reg d, Reg s) -> st.(reg_index d) <- st.(reg_index d) land st.(reg_index s)
    | Or (Reg d, Reg s) -> st.(reg_index d) <- st.(reg_index d) lor st.(reg_index s)
    | Xor (Reg d, Reg s) -> st.(reg_index d) <- st.(reg_index d) lxor st.(reg_index s)
    | Inc_r r -> st.(reg_index r) <- Word.add st.(reg_index r) 1
    | Dec_r r -> st.(reg_index r) <- Word.sub st.(reg_index r) 1
    | Shl_i (r, n) -> st.(reg_index r) <- Word.of_int (st.(reg_index r) lsl n)
    | Shr_i (r, n) -> st.(reg_index r) <- st.(reg_index r) lsr n
    | Neg (Reg r) -> st.(reg_index r) <- Word.neg st.(reg_index r)
    | Not (Reg r) -> st.(reg_index r) <- Word.lognot st.(reg_index r)
    | Imul (r, Reg s) ->
        st.(reg_index r) <- Word.mul st.(reg_index r) st.(reg_index s)
    | _ -> invalid_arg "X86_ref.exec: outside the modelled subset"
end

(* Registers the generator may write: everything except esp/ebp (which the
   harness owns). *)
let x86_regs = Isa_x86.Insn.[ EAX; ECX; EDX; EBX; ESI; EDI ]

let gen_x86_program : Isa_x86.Insn.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let open Isa_x86.Insn in
  let reg = oneofl x86_regs in
  let imm = map Word.to_signed (int_bound 0xFFFFFF) in
  let insn =
    oneof
      [
        map2 (fun r i -> Mov_ri (r, i)) reg imm;
        map2 (fun d s -> Mov (Reg d, Reg s)) reg reg;
        map2 (fun d s -> Add (Reg d, Reg s)) reg reg;
        map2 (fun d i -> Add_i (Reg d, i)) reg imm;
        map2 (fun d s -> Sub (Reg d, Reg s)) reg reg;
        map2 (fun d i -> Sub_i (Reg d, i)) reg imm;
        map2 (fun d s -> And (Reg d, Reg s)) reg reg;
        map2 (fun d s -> Or (Reg d, Reg s)) reg reg;
        map2 (fun d s -> Xor (Reg d, Reg s)) reg reg;
        map (fun r -> Inc_r r) reg;
        map (fun r -> Dec_r r) reg;
        map2 (fun r n -> Shl_i (r, n)) reg (int_range 0 31);
        map2 (fun r n -> Shr_i (r, n)) reg (int_range 0 31);
        map (fun r -> Neg (Reg r)) reg;
        map (fun r -> Not (Reg r)) reg;
        map2 (fun r s -> Imul (r, Reg s)) reg reg;
      ]
  in
  list_size (int_range 1 60) insn

let run_x86 insns =
  let mem = Mem.create () in
  let code =
    String.concat "" (List.map Isa_x86.Encode.encode insns)
    ^ Isa_x86.Encode.encode Isa_x86.Insn.Hlt
  in
  Mem.map mem ~base:0x1000
    ~size:(max 0x1000 (String.length code))
    ~perm:Mem.rx ~name:"text";
  Mem.poke_bytes mem 0x1000 code;
  Mem.map mem ~base:0x8000 ~size:0x1000 ~perm:Mem.rw ~name:"stack";
  let cpu = Isa_x86.Cpu.create mem in
  Isa_x86.Cpu.set cpu Isa_x86.Insn.ESP 0x8F00;
  cpu.Isa_x86.Cpu.eip <- 0x1000;
  match Isa_x86.Cpu.run ~fuel:10_000 ~traps:[] ~kernel:no_kernel cpu with
  | O.Halted -> Some (List.map (Isa_x86.Cpu.get cpu) x86_regs)
  | _ -> None

let prop_x86_differential =
  QCheck.Test.make ~name:"x86 interpreter = reference evaluator" ~count:500
    (QCheck.make
       ~print:(fun p -> String.concat "; " (List.map Isa_x86.Insn.to_string p))
       gen_x86_program)
    (fun program ->
      let st = Array.make 8 0 in
      List.iter (X86_ref.exec st) program;
      let expected = List.map (fun r -> st.(Isa_x86.Insn.reg_index r)) x86_regs in
      run_x86 program = Some expected)

(* ------------------------------------------------------------------ *)
(* ARM                                                                  *)
(* ------------------------------------------------------------------ *)

module Arm_ref = struct
  open Isa_arm.Insn

  type t = int array

  let op2 (st : t) = function
    | Imm i -> Word.of_int i
    | Reg r -> st.(reg_index r)
    | Lsl (r, n) -> Word.of_int (st.(reg_index r) lsl n)

  let exec (st : t) { cond; op } =
    assert (cond = AL);
    match op with
    | Mov (rd, o) -> st.(reg_index rd) <- op2 st o
    | Mvn (rd, o) -> st.(reg_index rd) <- Word.lognot (op2 st o)
    | Add (rd, rn, o) -> st.(reg_index rd) <- Word.add st.(reg_index rn) (op2 st o)
    | Sub (rd, rn, o) -> st.(reg_index rd) <- Word.sub st.(reg_index rn) (op2 st o)
    | Rsb (rd, rn, o) -> st.(reg_index rd) <- Word.sub (op2 st o) st.(reg_index rn)
    | And (rd, rn, o) -> st.(reg_index rd) <- st.(reg_index rn) land op2 st o
    | Orr (rd, rn, o) -> st.(reg_index rd) <- st.(reg_index rn) lor op2 st o
    | Eor (rd, rn, o) -> st.(reg_index rd) <- st.(reg_index rn) lxor op2 st o
    | Bic (rd, rn, o) ->
        st.(reg_index rd) <- st.(reg_index rn) land Word.lognot (op2 st o)
    | Mul (rd, rm, rs) ->
        st.(reg_index rd) <- Word.mul st.(reg_index rm) st.(reg_index rs)
    | _ -> invalid_arg "Arm_ref.exec: outside the modelled subset"
end

let arm_regs = Isa_arm.Insn.[ R0; R1; R2; R3; R4; R5; R6; R7; R8 ]

let gen_arm_program : Isa_arm.Insn.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let open Isa_arm.Insn in
  let reg = oneofl arm_regs in
  let enc_imm =
    map2 (fun imm8 rot -> Word.ror imm8 (2 * rot)) (int_bound 255) (int_bound 15)
  in
  let op2 =
    oneof
      [
        map (fun i -> Imm i) enc_imm;
        map (fun r -> Reg r) reg;
        map2 (fun r n -> Lsl (r, n)) reg (int_range 1 31);
      ]
  in
  let insn =
    oneof
      [
        map2 (fun r o -> al (Mov (r, o))) reg op2;
        map2 (fun r o -> al (Mvn (r, o))) reg op2;
        map3 (fun d n o -> al (Add (d, n, o))) reg reg op2;
        map3 (fun d n o -> al (Sub (d, n, o))) reg reg op2;
        map3 (fun d n o -> al (Rsb (d, n, o))) reg reg op2;
        map3 (fun d n o -> al (And (d, n, o))) reg reg op2;
        map3 (fun d n o -> al (Orr (d, n, o))) reg reg op2;
        map3 (fun d n o -> al (Eor (d, n, o))) reg reg op2;
        map3 (fun d n o -> al (Bic (d, n, o))) reg reg op2;
        map3 (fun d m s -> al (Mul (d, m, s))) reg reg reg;
      ]
  in
  list_size (int_range 1 60) insn

let run_arm insns =
  let mem = Mem.create () in
  let code =
    String.concat "" (List.map Isa_arm.Encode.encode insns)
    ^ Isa_arm.Encode.encode (Isa_arm.Insn.al (Isa_arm.Insn.Svc 0xFF))
  in
  Mem.map mem ~base:0x1000
    ~size:(max 0x1000 (String.length code))
    ~perm:Mem.rx ~name:"text";
  Mem.poke_bytes mem 0x1000 code;
  Mem.map mem ~base:0x8000 ~size:0x1000 ~perm:Mem.rw ~name:"stack";
  let cpu = Isa_arm.Cpu.create mem in
  Isa_arm.Cpu.set cpu Isa_arm.Insn.SP 0x8F00;
  Isa_arm.Cpu.set_pc cpu 0x1000;
  let kernel n _ = if n = 0xFF then O.Stop O.Halted else O.Resume in
  match Isa_arm.Cpu.run ~fuel:10_000 ~traps:[] ~kernel cpu with
  | O.Halted -> Some (List.map (Isa_arm.Cpu.get cpu) arm_regs)
  | _ -> None

let prop_arm_differential =
  QCheck.Test.make ~name:"arm interpreter = reference evaluator" ~count:500
    (QCheck.make
       ~print:(fun p -> String.concat "; " (List.map Isa_arm.Insn.to_string p))
       gen_arm_program)
    (fun program ->
      let st = Array.make 16 0 in
      (* Architectural PC reads as insn+8: the generator never reads PC
         (it is not in arm_regs), so a flat state works. *)
      List.iter (Arm_ref.exec st) program;
      let expected = List.map (fun r -> st.(Isa_arm.Insn.reg_index r)) arm_regs in
      run_arm program = Some expected)

(* ------------------------------------------------------------------ *)
(* Equivalent-instruction randomization preserves semantics (§IV)       *)
(* ------------------------------------------------------------------ *)

let prop_equiv_x86_preserves_semantics =
  QCheck.Test.make ~name:"equiv rewrite preserves x86 semantics" ~count:300
    QCheck.(make Gen.(pair (int_bound 0xFFFF) gen_x86_program))
    (fun (seed, program) ->
      let items = List.map (fun i -> Isa_x86.Asm.I i) program in
      let rewritten =
        List.filter_map
          (function Isa_x86.Asm.I i -> Some i | _ -> None)
          (Defense.Equiv.x86 ~seed items)
      in
      run_x86 program = run_x86 rewritten)

let prop_equiv_arm_preserves_semantics =
  QCheck.Test.make ~name:"equiv rewrite preserves arm semantics" ~count:300
    QCheck.(make Gen.(pair (int_bound 0xFFFF) gen_arm_program))
    (fun (seed, program) ->
      let items = List.map (fun i -> Isa_arm.Asm.I i) program in
      let rewritten =
        List.filter_map
          (function Isa_arm.Asm.I i -> Some i | _ -> None)
          (Defense.Equiv.arm ~seed items)
      in
      run_arm program = run_arm rewritten)

let test_equiv_actually_rewrites () =
  (* A zero-heavy program gives the pass plenty of targets. *)
  let open Isa_x86.Insn in
  let program =
    List.concat
      (List.init 32 (fun _ ->
           [ Isa_x86.Asm.I (Mov_ri (EAX, 0)); Isa_x86.Asm.I (Inc_r ECX) ]))
  in
  let rewritten = Defense.Equiv.x86 ~seed:5 program in
  Alcotest.(check bool)
    "some rewrites happened" true
    (Defense.Equiv.count_rewrites_x86 program rewritten > 5);
  (* Determinism per seed. *)
  Alcotest.(check bool)
    "deterministic" true
    (Defense.Equiv.x86 ~seed:5 program = rewritten);
  Alcotest.(check bool)
    "seed-dependent" true
    (Defense.Equiv.x86 ~seed:6 program <> rewritten)

(* ------------------------------------------------------------------ *)
(* Cross-ISA: the same abstract computation on both machines            *)
(* ------------------------------------------------------------------ *)

(* A tiny abstract expression machine lowered to both ISAs; both must
   compute the same 32-bit result. *)
type expr_op = Oadd | Osub | Oxor | Oand | Oor

let gen_expr : (int * (expr_op * int) list) QCheck.Gen.t =
  QCheck.Gen.(
    pair (int_bound 0xFFFF)
      (list_size (int_range 1 20)
         (pair (oneofl [ Oadd; Osub; Oxor; Oand; Oor ]) (int_bound 0xFF))))

let eval_expr (init, steps) =
  List.fold_left
    (fun acc (op, v) ->
      match op with
      | Oadd -> Word.add acc v
      | Osub -> Word.sub acc v
      | Oxor -> acc lxor v
      | Oand -> acc land v
      | Oor -> acc lor v)
    (Word.of_int init) steps

(* xor/and/or with immediates are outside the x86 subset: lower through a
   scratch register. *)
let lower_x86 (init, steps) =
  let open Isa_x86.Insn in
  Mov_ri (EAX, init)
  :: List.concat_map
       (fun (op, v) ->
         match op with
         | Oadd -> [ Add_i (Reg EAX, v) ]
         | Osub -> [ Sub_i (Reg EAX, v) ]
         | Oxor -> [ Mov_ri (ECX, v); Xor (Reg EAX, Reg ECX) ]
         | Oand -> [ Mov_ri (ECX, v); And (Reg EAX, Reg ECX) ]
         | Oor -> [ Mov_ri (ECX, v); Or (Reg EAX, Reg ECX) ])
       steps

let lower_arm (init, steps) =
  let open Isa_arm.Insn in
  al (Mov (R0, Imm (init land 0xFF)))
  :: al (Orr (R0, R0, Imm (init land 0xFF00)))
  :: List.map
       (fun (op, v) ->
         match op with
         | Oadd -> al (Add (R0, R0, Imm v))
         | Osub -> al (Sub (R0, R0, Imm v))
         | Oxor -> al (Eor (R0, R0, Imm v))
         | Oand -> al (And (R0, R0, Imm v))
         | Oor -> al (Orr (R0, R0, Imm v)))
       steps

let prop_cross_isa =
  QCheck.Test.make ~name:"same computation on both ISAs" ~count:300 (QCheck.make gen_expr)
    (fun expr ->
      let expected = eval_expr expr in
      let x86 =
        match run_x86 (lower_x86 expr) with
        | Some (eax :: _) -> eax
        | _ -> -1
      in
      let arm =
        match run_arm (lower_arm expr) with Some (r0 :: _) -> r0 | _ -> -2
      in
      x86 = expected && arm = expected)

(* ------------------------------------------------------------------ *)
(* Decoded-instruction cache: cached and uncached execution are          *)
(* bit-identical over every exploit scenario                             *)
(* ------------------------------------------------------------------ *)

(* The icache's correctness argument is "the cache only changes speed,
   never outcomes".  These tests discharge it end-to-end: every §III
   exploit cell (plus a benign parse) is run through the machine-level
   [parse_response] twice — once with the cache, once decoding every
   step — and the full run result (stop reason, instructions retired,
   return value, final register file) must match exactly.  The exploit
   payloads are the hardest workloads the simulator has: smashed stacks,
   pivots, nop sleds, shellcode executing out of freshly written pages. *)

let lookup_name = Dns.Name.of_string "ipv4.connman.net"

let check_same_run name (a : Loader.Process.run_result) (b : Loader.Process.run_result) =
  Alcotest.(check string)
    (name ^ ": outcome")
    (Format.asprintf "%a" O.pp a.Loader.Process.outcome)
    (Format.asprintf "%a" O.pp b.Loader.Process.outcome);
  Alcotest.(check int) (name ^ ": steps") a.Loader.Process.steps b.Loader.Process.steps;
  Alcotest.(check int) (name ^ ": ret") a.Loader.Process.ret b.Loader.Process.ret;
  Alcotest.(check (array int))
    (name ^ ": registers")
    a.Loader.Process.regs b.Loader.Process.regs

(* One victim boot + one machine-level parse of [wire], with or without
   the icache.  Both boots use the same config and seed, so they are the
   same device down to the ASLR draw and canary — only the interpreter's
   caching differs. *)
let parse_once ~icache ~config ~raw_name =
  let d = Connman.Dnsproxy.create config in
  let query = Connman.Dnsproxy.make_query d lookup_name in
  let wire = Exploit.Autogen.response_for ~query ~raw_name in
  let proc = Connman.Dnsproxy.process d in
  let buf = proc.Loader.Process.layout.Loader.Layout.heap_base in
  Mem.write_bytes proc.Loader.Process.mem buf wire;
  Loader.Process.call proc ~fuel:400_000 ~icache
    ~entry:(Loader.Process.symbol proc "parse_response")
    ~args:[ buf; String.length wire ]

let exploit_cells =
  [
    ("E1 injection/x86", Loader.Arch.X86, Defense.Profile.none);
    ("E2 injection/arm", Loader.Arch.Arm, Defense.Profile.none);
    ("E3 ret2libc/x86", Loader.Arch.X86, Defense.Profile.wx);
    ("E4 rop/arm", Loader.Arch.Arm, Defense.Profile.wx);
    ("E5 rop-aslr/x86", Loader.Arch.X86, Defense.Profile.wx_aslr);
    ("E6 rop-aslr/arm", Loader.Arch.Arm, Defense.Profile.wx_aslr);
  ]

let test_cached_uncached_exploits () =
  List.iter
    (fun (name, arch, profile) ->
      let config =
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile;
          boot_seed = 41;
          diversity_seed = None;
        }
      in
      (* Attacker side: analysis copy of the same firmware, different
         boot, default ([choose]-picked) strategy for the cell. *)
      let analysis =
        Connman.Dnsproxy.process
          (Connman.Dnsproxy.create { config with Connman.Dnsproxy.boot_seed = 1041 })
      in
      match Exploit.Autogen.generate ~analysis:(Exploit.Target.connman analysis) () with
      | Error e -> Alcotest.failf "%s: generation failed: %s" name e
      | Ok (_payload, raw_name) ->
          let cached = parse_once ~icache:true ~config ~raw_name in
          let uncached = parse_once ~icache:false ~config ~raw_name in
          check_same_run name cached uncached;
          Alcotest.(check bool)
            (name ^ ": scenario actually ran")
            true
            (cached.Loader.Process.steps > 100))
    exploit_cells

let test_cached_uncached_dos () =
  List.iter
    (fun (arch, tag) ->
      let config =
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile = Defense.Profile.wx_aslr;
          boot_seed = 7;
          diversity_seed = None;
        }
      in
      let analysis =
        Connman.Dnsproxy.process
          (Connman.Dnsproxy.create { config with Connman.Dnsproxy.boot_seed = 1007 })
      in
      match
        Exploit.Autogen.generate
          ~analysis:(Exploit.Target.connman analysis)
          ~strategy:Exploit.Autogen.Dos ()
      with
      | Error e -> Alcotest.failf "dos/%s: generation failed: %s" tag e
      | Ok (_payload, raw_name) ->
          check_same_run ("dos/" ^ tag)
            (parse_once ~icache:true ~config ~raw_name)
            (parse_once ~icache:false ~config ~raw_name))
    [ (Loader.Arch.X86, "x86"); (Loader.Arch.Arm, "arm") ]

let test_cached_uncached_benign () =
  List.iter
    (fun (arch, tag) ->
      let config =
        {
          Connman.Dnsproxy.version = Connman.Version.v1_34;
          arch;
          profile = Defense.Profile.wx_aslr;
          boot_seed = 23;
          diversity_seed = None;
        }
      in
      let parse ~icache =
        let d = Connman.Dnsproxy.create config in
        let query = Connman.Dnsproxy.make_query d lookup_name in
        let wire =
          Dns.Packet.encode
            (Dns.Packet.response ~query
               [ Dns.Packet.a_record lookup_name ~ttl:60 ~ipv4:0x5DB8D822 ])
        in
        let proc = Connman.Dnsproxy.process d in
        let buf = proc.Loader.Process.layout.Loader.Layout.heap_base in
        Mem.write_bytes proc.Loader.Process.mem buf wire;
        Loader.Process.call proc ~fuel:400_000 ~icache
          ~entry:(Loader.Process.symbol proc "parse_response")
          ~args:[ buf; String.length wire ]
      in
      let cached = parse ~icache:true in
      check_same_run ("benign/" ^ tag) cached (parse ~icache:false);
      Alcotest.(check string)
        ("benign/" ^ tag ^ ": parse succeeded")
        "halted (normal return)"
        (Format.asprintf "%a" O.pp cached.Loader.Process.outcome))
    [ (Loader.Arch.X86, "x86"); (Loader.Arch.Arm, "arm") ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "differential"
    [
      ( "interpreters vs reference",
        [ qt prop_x86_differential; qt prop_arm_differential; qt prop_cross_isa ]
      );
      ( "equivalent-instruction randomization",
        [
          qt prop_equiv_x86_preserves_semantics;
          qt prop_equiv_arm_preserves_semantics;
          Alcotest.test_case "rewrites, deterministically" `Quick
            test_equiv_actually_rewrites;
        ] );
      ( "icache: cached = uncached",
        [
          Alcotest.test_case "all exploit cells" `Quick test_cached_uncached_exploits;
          Alcotest.test_case "dos payloads" `Quick test_cached_uncached_dos;
          Alcotest.test_case "benign parses" `Quick test_cached_uncached_benign;
        ] );
    ]
