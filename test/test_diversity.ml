(* The diversity engine's contract is behavioral equivalence: a variant
   must be indistinguishable from the stock image to every benign client
   (and to the attacker only through its addresses).  This suite replays
   every exploit cell, the DoS, and benign traffic against diversified
   variants and mitigated interpreters, and pins the survival matrix's
   determinism and headline result. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let lookup = Dns.Name.of_string "ipv4.connman.net"

let benign_wire d =
  let q = Connman.Dnsproxy.make_query d lookup in
  Dns.Packet.encode
    (Dns.Packet.response ~query:q
       [ Dns.Packet.a_record lookup ~ttl:300 ~ipv4:0x5DB8_D822 ])

let dos_wire d =
  let q = Connman.Dnsproxy.make_query d lookup in
  Dns.Craft.hostile_response ~query:q ~raw_name:(Dns.Craft.dos_name ~size:8192)
    ()

let cfg ?diversity_seed arch profile =
  { Connman.Dnsproxy.default_config with arch; profile; boot_seed = 42;
    diversity_seed }

let disp = Alcotest.testable Connman.Dnsproxy.pp_disposition ( = )

let both_isas = [ Loader.Arch.X86; Loader.Arch.Arm ]
let arch_name = Loader.Arch.name
let dseeds = [ 7; 99; 12345 ]

(* {1 Variant generation} *)

let test_pool_seeds () =
  let seen = Hashtbl.create 8192 in
  for i = 0 to 4095 do
    let s = Diversity.Pool.seed_for ~master:0xBEEF i in
    check_bool "seed in range" true (s >= 0 && s <= 0x3FFF_FFFF);
    check_bool (Printf.sprintf "seed %d distinct" i) false
      (Hashtbl.mem seen s);
    Hashtbl.add seen s ()
  done;
  (* closed-form: index i reproducible independently of order *)
  check_int "stable derivation"
    (Diversity.Pool.seed_for ~master:0xBEEF 1000)
    (List.nth (Diversity.Pool.seeds ~master:0xBEEF 1001) 1000)

let test_plan_determinism () =
  let open Diversity.Variant in
  List.iter
    (fun seed ->
      let plan arch =
        match arch with
        | Loader.Arch.X86 ->
            Connman.Program_x86.variant_plan ~version:Connman.Version.v1_34
              ~profile:Defense.Profile.wx ~seed
        | Loader.Arch.Arm ->
            Connman.Program_arm.variant_plan ~version:Connman.Version.v1_34
              ~profile:Defense.Profile.wx ~seed
      in
      List.iter
        (fun arch ->
          let an = arch_name arch in
          let p1 = plan arch and p2 = plan arch in
          check_bool (an ^ " plan deterministic") true (p1 = p2);
          check_bool (an ^ " layout shuffled") true (p1.moved > 0);
          check_bool (an ^ " padding inserted") true (p1.pad_bytes > 0);
          check_bool (an ^ " equiv rewrites applied") true (p1.rewrites > 0))
        both_isas)
    dseeds;
  let px a = Connman.Program_x86.variant_plan ~version:Connman.Version.v1_34
      ~profile:Defense.Profile.wx ~seed:a in
  check_bool "distinct seeds give distinct variants" false (px 7 = px 99)

(* {1 Differential regression: variants are behaviorally equivalent} *)

let test_benign_identity () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      List.iter
        (fun dseed ->
          let base = Connman.Dnsproxy.create (cfg arch Defense.Profile.wx) in
          let div =
            Connman.Dnsproxy.fork_diversified base ~diversity_seed:dseed
          in
          let d0 = Connman.Dnsproxy.handle_response base (benign_wire base) in
          let s0 = Connman.Dnsproxy.last_steps base in
          let d1 = Connman.Dnsproxy.handle_response div (benign_wire div) in
          let s1 = Connman.Dnsproxy.last_steps div in
          Alcotest.check disp
            (Printf.sprintf "%s dseed=%d benign disposition" an dseed)
            d0 d1;
          check_int
            (Printf.sprintf "%s dseed=%d benign step count" an dseed)
            s0 s1;
          (match d0 with
          | Connman.Dnsproxy.Cached n ->
              check_int (an ^ " record cached") 1 n
          | _ -> Alcotest.fail (an ^ " benign parse did not cache")))
        dseeds)
    both_isas

let test_dos_identity () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      List.iter
        (fun dseed ->
          let base = Connman.Dnsproxy.create (cfg arch Defense.Profile.wx) in
          let div =
            Connman.Dnsproxy.fork_diversified base ~diversity_seed:dseed
          in
          let d0 = Connman.Dnsproxy.handle_response base (dos_wire base) in
          let s0 = Connman.Dnsproxy.last_steps base in
          let d1 = Connman.Dnsproxy.handle_response div (dos_wire div) in
          let s1 = Connman.Dnsproxy.last_steps div in
          (match (d0, d1) with
          | Connman.Dnsproxy.Crashed _, Connman.Dnsproxy.Crashed _ -> ()
          | _ -> Alcotest.fail (an ^ " DoS did not crash both images"));
          check_int
            (Printf.sprintf "%s dseed=%d DoS step count" an dseed)
            s0 s1;
          check_bool (an ^ " stock daemon dead") false
            (Connman.Dnsproxy.alive base);
          check_bool (an ^ " variant daemon dead") false
            (Connman.Dnsproxy.alive div))
        dseeds)
    both_isas

(* The six matrix cells: an attacker who studies the *variant itself*
   (analysis boot with the same diversity seed) still lands the exploit
   on every cell — diversity shifts addresses, it does not remove the
   bug.  Step counts match the stock image too, except where the payload
   embeds layout-dependent gadget addresses whose chain length varies
   (the Rop_aslr cells). *)
let cells arch =
  match arch with
  | Loader.Arch.X86 ->
      [
        ("E1", Defense.Profile.none, Exploit.Autogen.Code_injection);
        ("E3", Defense.Profile.wx, Exploit.Autogen.Ret2libc);
        ("E5", Defense.Profile.wx_aslr, Exploit.Autogen.Rop_aslr);
      ]
  | Loader.Arch.Arm ->
      [
        ("E2", Defense.Profile.none, Exploit.Autogen.Code_injection);
        ("E4", Defense.Profile.wx, Exploit.Autogen.Rop_wx);
        ("E6", Defense.Profile.wx_aslr, Exploit.Autogen.Rop_aslr);
      ]

let exploit_once c strategy =
  let victim = Connman.Dnsproxy.create c in
  let analysis = Connman.Dnsproxy.process (Connman.Dnsproxy.create c) in
  match
    Exploit.Autogen.generate ~analysis:(Exploit.Target.connman analysis)
      ~strategy ()
  with
  | Error e -> Alcotest.fail ("payload generation failed: " ^ e)
  | Ok (_, raw_name) ->
      let q = Connman.Dnsproxy.make_query victim lookup in
      let wire = Exploit.Autogen.response_for ~query:q ~raw_name in
      let d = Connman.Dnsproxy.handle_response victim wire in
      (d, Connman.Dnsproxy.last_steps victim)

let test_exploit_equivalence () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      List.iter
        (fun (id, profile, strategy) ->
          let stock, stock_steps = exploit_once (cfg arch profile) strategy in
          (match stock with
          | Connman.Dnsproxy.Compromised _ -> ()
          | _ ->
              Alcotest.failf "%s %s stock image not compromised: %a" an id
                Connman.Dnsproxy.pp_disposition stock);
          List.iter
            (fun dseed ->
              let d, steps =
                exploit_once (cfg ~diversity_seed:dseed arch profile) strategy
              in
              (match d with
              | Connman.Dnsproxy.Compromised _ -> ()
              | _ ->
                  Alcotest.failf "%s %s dseed=%d variant not compromised: %a"
                    an id dseed Connman.Dnsproxy.pp_disposition d);
              (* Rop_aslr chains pivot through .text gadgets whose
                 addresses (and hence chain step counts) are exactly what
                 diversity moves; every other payload retires the same
                 instruction count on every variant. *)
              if strategy <> Exploit.Autogen.Rop_aslr then
                check_int
                  (Printf.sprintf "%s %s dseed=%d step count" an id dseed)
                  stock_steps steps)
            [ 7; 99 ])
        (cells arch))
    both_isas

(* Register-file identity for a leaf call: everything the caller can
   observe matches bit-for-bit; the only divergent slots are values that
   point into .text (the ARM PC after the final return), which are
   precisely what diversification is supposed to move. *)
let test_register_identity () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      let base = Connman.Dnsproxy.create (cfg arch Defense.Profile.wx) in
      let div = Connman.Dnsproxy.fork_diversified base ~diversity_seed:7 in
      let p0 = Connman.Dnsproxy.process base in
      let p1 = Connman.Dnsproxy.process div in
      let r0 = Loader.Process.call_named p0 ~entry:"checksum" ~args:[ 5; 3 ] in
      let r1 = Loader.Process.call_named p1 ~entry:"checksum" ~args:[ 5; 3 ] in
      check_int (an ^ " checksum steps") r0.Loader.Process.steps
        r1.Loader.Process.steps;
      check_int (an ^ " checksum result") r0.Loader.Process.ret
        r1.Loader.Process.ret;
      check_int (an ^ " register file width")
        (Array.length r0.Loader.Process.regs)
        (Array.length r1.Loader.Process.regs);
      let text_resident p v =
        (* inside the main image (below __bss_start, within the mapped
           image window) — e.g. the ARM PC after the final return *)
        let bss = Loader.Process.symbol p "__bss_start" in
        v < bss && bss - v < 0x10_0000
      in
      Array.iteri
        (fun i v0 ->
          let v1 = r1.Loader.Process.regs.(i) in
          if v0 <> v1 then
            check_bool
              (Printf.sprintf "%s reg %d differs only if text-resident" an i)
              true
              (text_resident p0 v0 && text_resident p1 v1))
        r0.Loader.Process.regs)
    both_isas

(* {1 Enforced mitigations: shadow stack + forward-edge CFI} *)

(* Zero false positives: benign parses and even crashing (DoS) parses
   behave bit-identically under [run_mitigated] — the checks only fire
   on control-flow the static image never produces. *)
let test_mitigations_benign () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      let plain = Connman.Dnsproxy.create (cfg arch Defense.Profile.wx) in
      let hard =
        Connman.Dnsproxy.create
          (cfg arch (Defense.Profile.with_mitigations Defense.Profile.wx))
      in
      let d0 = Connman.Dnsproxy.handle_response plain (benign_wire plain) in
      let s0 = Connman.Dnsproxy.last_steps plain in
      let d1 = Connman.Dnsproxy.handle_response hard (benign_wire hard) in
      let s1 = Connman.Dnsproxy.last_steps hard in
      Alcotest.check disp (an ^ " benign disposition under mitigation") d0 d1;
      check_int (an ^ " benign steps under mitigation") s0 s1)
    both_isas

let test_mitigations_crash_loop () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      let plain = Connman.Dnsproxy.create (cfg arch Defense.Profile.wx) in
      let hard =
        Connman.Dnsproxy.create
          (cfg arch (Defense.Profile.with_mitigations Defense.Profile.wx))
      in
      (* a crash-looping daemon under a supervisor: the mitigated build
         must crash for the same reason at the same step on every boot,
         never misattribute the wild write to a CFI violation *)
      for boot = 1 to 3 do
        let d0 = Connman.Dnsproxy.handle_response plain (dos_wire plain) in
        let s0 = Connman.Dnsproxy.last_steps plain in
        let d1 = Connman.Dnsproxy.handle_response hard (dos_wire hard) in
        let s1 = Connman.Dnsproxy.last_steps hard in
        (match (d0, d1) with
        | Connman.Dnsproxy.Crashed r0, Connman.Dnsproxy.Crashed r1 ->
            check_string
              (Printf.sprintf "%s boot %d crash reason" an boot)
              (Format.asprintf "%a" Machine.Outcome.pp r0)
              (Format.asprintf "%a" Machine.Outcome.pp r1)
        | _, Connman.Dnsproxy.Blocked _ ->
            Alcotest.failf "%s boot %d: mitigation false positive on DoS" an
              boot
        | _ -> Alcotest.failf "%s boot %d: DoS did not crash both" an boot);
        check_int (Printf.sprintf "%s boot %d crash step count" an boot) s0 s1;
        Connman.Dnsproxy.restart plain;
        Connman.Dnsproxy.restart hard
      done)
    both_isas

(* The decision table: shadow stack + forward CFI block all six §III
   payloads (every one pivots through a corrupted return slot), while
   forward-edge CFI alone blocks none — and [Exploit.Autogen]'s oracle
   agrees with what the interpreters actually do. *)
let test_mitigations_block_exploits () =
  List.iter
    (fun arch ->
      let an = arch_name arch in
      List.iter
        (fun (id, profile, strategy) ->
          let hard = Defense.Profile.with_mitigations profile in
          check_bool
            (Printf.sprintf "%s %s oracle: mitigated profile blocks" an id)
            false
            (Exploit.Autogen.expected_success hard strategy);
          check_bool
            (Printf.sprintf "%s %s oracle names the shadow stack" an id)
            true
            (List.mem "shstk" (Exploit.Autogen.mitigated_by hard strategy));
          (* payload built against a stock-profile analysis image; the
             victim runs the same layout with enforcement on *)
          let victim = Connman.Dnsproxy.create (cfg arch hard) in
          let analysis =
            Connman.Dnsproxy.process
              (Connman.Dnsproxy.create (cfg arch profile))
          in
          (match
             Exploit.Autogen.generate
               ~analysis:(Exploit.Target.connman analysis) ~strategy ()
           with
          | Error e -> Alcotest.fail ("payload generation failed: " ^ e)
          | Ok (_, raw_name) -> (
              let q = Connman.Dnsproxy.make_query victim lookup in
              let wire = Exploit.Autogen.response_for ~query:q ~raw_name in
              match Connman.Dnsproxy.handle_response victim wire with
              | Connman.Dnsproxy.Blocked _ -> ()
              | d ->
                  Alcotest.failf "%s %s not blocked under mitigations: %a" an
                    id Connman.Dnsproxy.pp_disposition d));
          (* forward-edge CFI alone: no return-edge checks, so every
             §III payload still lands *)
          let fwd = Defense.Profile.with_forward_cfi profile in
          check_bool
            (Printf.sprintf "%s %s oracle: forward CFI alone is bypassed" an
               id)
            true
            (Exploit.Autogen.expected_success fwd strategy);
          let d, _ = exploit_once (cfg arch fwd) strategy in
          match d with
          | Connman.Dnsproxy.Compromised _ -> ()
          | d ->
              Alcotest.failf "%s %s under forward CFI alone: %a" an id
                Connman.Dnsproxy.pp_disposition d)
        (cells arch))
    both_isas

(* {1 ASLR entropy × diversity sweep} *)

(* Hardcoded-libc ret2libc against independently-booted devices: success
   decays with ASLR entropy; per-boot code-layout diversity never makes
   the attacker's life easier.  Forks share the template's ASLR draw, so
   this sweep uses full boots — entropy only exists across boots. *)
let test_entropy_diversity_sweep () =
  let n = 32 in
  let rate ~bits ~div =
    let profile =
      if bits = 0 then Defense.Profile.wx
      else Defense.Profile.with_entropy bits Defense.Profile.wx
    in
    let analysis_cfg =
      { Connman.Dnsproxy.default_config with
        arch = Loader.Arch.X86; profile; boot_seed = 4242 }
    in
    let analysis =
      Connman.Dnsproxy.process (Connman.Dnsproxy.create analysis_cfg)
    in
    match
      Exploit.Autogen.generate ~analysis:(Exploit.Target.connman analysis)
        ~strategy:Exploit.Autogen.Ret2libc ()
    with
    | Error e -> Alcotest.fail ("ret2libc generation failed: " ^ e)
    | Ok (_, raw_name) ->
        let hits = ref 0 in
        for i = 0 to n - 1 do
          let c =
            { analysis_cfg with
              boot_seed = 100 + i;
              diversity_seed =
                (if div then Some (Diversity.Pool.seed_for ~master:0xD17 i)
                 else None) }
          in
          let victim = Connman.Dnsproxy.create c in
          let q = Connman.Dnsproxy.make_query victim lookup in
          let wire = Exploit.Autogen.response_for ~query:q ~raw_name in
          match Connman.Dnsproxy.handle_response victim wire with
          | Connman.Dnsproxy.Compromised _ -> incr hits
          | _ -> ()
        done;
        float_of_int !hits /. float_of_int n
  in
  List.iter
    (fun div ->
      let label = if div then "diversified" else "stock" in
      let rates = List.map (fun bits -> (bits, rate ~bits ~div)) [ 0; 2; 4; 8 ] in
      check_bool (label ^ ": zero entropy is deterministic") true
        (List.assoc 0 rates = 1.0);
      check_bool (label ^ ": 8 bits nearly always survives") true
        (List.assoc 8 rates < 0.1);
      let rec monotone = function
        | (b0, r0) :: ((b1, r1) :: _ as rest) ->
            check_bool
              (Printf.sprintf "%s: survival at %d bits <= at %d bits" label b1
                 b0)
              true (r1 <= r0);
            monotone rest
        | _ -> ()
      in
      monotone rates;
      (* diversity must not help the attacker at any entropy level *)
      if div then
        List.iter
          (fun (bits, r) ->
            check_bool
              (Printf.sprintf "diversified rate at %d bits <= stock" bits)
              true
              (r <= rate ~bits ~div:false))
          rates)
    [ false; true ]

(* {1 Survival matrix} *)

let test_matrix_deterministic () =
  let run () =
    Core.Experiments.diversity_matrix ~seed:3 ~smoke:true ~variants:6 ()
  in
  let r1 = run () in
  let j1 = Core.Experiments.diversity_json r1 in
  let j2 = Core.Experiments.diversity_json (run ()) in
  check_bool "diversity-matrix-v1 byte-deterministic" true
    (String.equal j1 j2);
  check_bool "report self-check passes" true r1.Core.Experiments.div_ok;
  check_int "all seven cells present" 7
    (List.length r1.Core.Experiments.div_cells);
  (* the headline: cells whose stock image falls to every single trial
     drop to (here) zero under layout diversity + shadow-stack CFI *)
  let headline =
    List.exists
      (fun c ->
        let combo name =
          List.find
            (fun x -> x.Core.Experiments.combo = name)
            c.Core.Experiments.div_combos
        in
        String.length c.Core.Experiments.div_id = 2
        && (combo "base").Core.Experiments.combo_rate = 1.0
        && (combo "div+shstk").Core.Experiments.combo_rate < 0.1)
      r1.Core.Experiments.div_cells
  in
  check_bool "an always-successful cell drops below 10% survival" true
    headline;
  (* variant stats are wired through from the generator and the gadget
     scanner *)
  List.iter
    (fun c ->
      List.iter
        (fun x ->
          let open Core.Experiments in
          if x.combo_diversified then begin
            check_bool (c.div_id ^ " " ^ x.combo ^ " gadget baseline") true
              (x.combo_gadgets_baseline > 0);
            check_bool
              (c.div_id ^ " " ^ x.combo ^ " gadget addresses mostly die")
              true
              (x.combo_gadget_survival_mean < 0.5);
            check_bool (c.div_id ^ " " ^ x.combo ^ " layout moved") true
              (x.combo_moved_mean > 0.0);
            check_bool (c.div_id ^ " " ^ x.combo ^ " variant sample") true
              (x.combo_variant_sample <> []);
            List.iter
              (fun v ->
                check_bool "sample variant scanned" true (v.var_gadgets > 0))
              x.combo_variant_sample
          end)
        c.Core.Experiments.div_combos)
    r1.Core.Experiments.div_cells

let test_matrix_filters () =
  let r =
    Core.Experiments.diversity_matrix ~seed:5 ~smoke:true ~variants:2
      ~arch:Loader.Arch.X86 ()
  in
  check_int "x86 filter selects four cells" 4
    (List.length r.Core.Experiments.div_cells);
  List.iter
    (fun c -> check_string "cell arch" "x86" c.Core.Experiments.div_arch)
    r.Core.Experiments.div_cells;
  Alcotest.check_raises "empty selection rejected"
    (Invalid_argument "Experiments.diversity_matrix: no cell matches the filter")
    (fun () ->
      ignore
        (Core.Experiments.diversity_matrix ~smoke:true ~variants:2
           ~arch:Loader.Arch.Arm
           ~base_profile:(Defense.Profile.with_seccomp Defense.Profile.none)
           ()))

(* {1 Fleet cohort hook} *)

let test_fleet_cohort () =
  let cfg =
    { Fleet.Campaign.smoke_config with Fleet.Campaign.diversity_frac = 0.5 }
  in
  let r = Fleet.Campaign.run cfg in
  let open Fleet.Campaign in
  check_bool "some devices diversified" true (r.r_diversified > 0);
  check_bool "mixed cohort (not all diversified)" true
    (r.r_diversified < cfg.devices);
  check_bool "cohort counts bounded" true
    (r.r_div_compromised <= r.r_diversified
    && r.r_div_compromised + r.r_stock_compromised
       <= r.r_compromised_devices);
  let j = Fleet.Campaign.json r in
  let contains needle =
    let nl = String.length needle and hl = String.length j in
    let rec go i = i + nl <= hl && (String.sub j i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> check_bool (key ^ " serialized") true (contains ("\"" ^ key ^ "\"")))
    [ "diversity_frac"; "diversified_devices"; "div_compromised_devices";
      "stock_compromised_devices" ]

let () =
  Alcotest.run "diversity"
    [
      ( "variant generation",
        [
          Alcotest.test_case "pool seed derivation" `Quick test_pool_seeds;
          Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
        ] );
      ( "differential regression",
        [
          Alcotest.test_case "benign parse identity" `Quick
            test_benign_identity;
          Alcotest.test_case "DoS identity" `Quick test_dos_identity;
          Alcotest.test_case "exploit-cell equivalence" `Quick
            test_exploit_equivalence;
          Alcotest.test_case "register-file identity" `Quick
            test_register_identity;
        ] );
      ( "embedded mitigations",
        [
          Alcotest.test_case "benign zero false positives" `Quick
            test_mitigations_benign;
          Alcotest.test_case "crash-loop zero false positives" `Quick
            test_mitigations_crash_loop;
          Alcotest.test_case "all six cells blocked" `Quick
            test_mitigations_block_exploits;
        ] );
      ( "survival",
        [
          Alcotest.test_case "entropy x diversity sweep" `Slow
            test_entropy_diversity_sweep;
          Alcotest.test_case "matrix determinism + headline" `Slow
            test_matrix_deterministic;
          Alcotest.test_case "matrix filters" `Quick test_matrix_filters;
        ] );
      ( "fleet cohorts",
        [ Alcotest.test_case "mixed-diversity fleet" `Slow test_fleet_cohort ] );
    ]
