(* Tests for the DNS wire codec and hostile crafting. *)

open Dns

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- names --- *)

let test_name_string_roundtrip () =
  check_string "dotted" "www.example.com"
    (Name.to_string (Name.of_string "www.example.com"));
  check_string "root" "." (Name.to_string (Name.of_string "."));
  check_bool "valid" true (Name.valid (Name.of_string "ipv4.connman.net"));
  check_bool "long label invalid" false (Name.valid [ String.make 64 'a' ])

let test_name_encode () =
  check_string "wire form" "\x03www\x07example\x03com\x00"
    (Name.encode (Name.of_string "www.example.com"))

let test_name_decode_simple () =
  let msg = "\x03www\x07example\x03com\x00rest" in
  match Name.decode msg 0 with
  | Ok (labels, used) ->
      check_string "labels" "www.example.com" (Name.to_string labels);
      check_int "consumed" 17 used
  | Error e -> Alcotest.fail e

let test_name_decode_compressed () =
  (* "example.com" at 0; "www" + pointer-to-0 at 13. *)
  let msg = "\x07example\x03com\x00\x03www\xC0\x00" in
  match Name.decode msg 13 with
  | Ok (labels, used) ->
      check_string "expanded" "www.example.com" (Name.to_string labels);
      check_int "pointer consumes 2 after label" 6 used
  | Error e -> Alcotest.fail e

let test_name_pointer_loop_rejected () =
  let msg = "\xC0\x00" in
  match Name.decode msg 0 with
  | Ok _ -> Alcotest.fail "expected loop detection"
  | Error _ -> ()

let test_name_truncation_rejected () =
  (match Name.decode "\x05ab" 0 with
  | Ok _ -> Alcotest.fail "expected truncation error"
  | Error _ -> ());
  match Name.decode "\x03www" 0 with
  | Ok _ -> Alcotest.fail "expected missing terminator error"
  | Error _ -> ()

let test_expand_like_connman_is_raw_stream () =
  let msg = "\x03www\x07example\x03com\x00" in
  match Name.expand_like_connman msg 0 with
  | Ok (stream, used) ->
      check_string "stream = wire minus terminator" "\x03www\x07example\x03com"
        stream;
      check_int "consumed" 17 used
  | Error e -> Alcotest.fail e

let test_expand_like_connman_permissive () =
  (* A 100-byte label is invalid per RFC but accepted by the vulnerable
     parser. *)
  let msg = "\x64" ^ String.make 100 'A' ^ "\x00" in
  (match Name.decode msg 0 with
  | Ok _ -> Alcotest.fail "strict decoder must reject length 100"
  | Error _ -> ());
  match Name.expand_like_connman msg 0 with
  | Ok (stream, _) -> check_int "copied verbatim" 101 (String.length stream)
  | Error e -> Alcotest.fail e

let prop_name_encode_decode =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 20)))
  in
  QCheck.Test.make ~name:"name encode/decode round-trip" ~count:300
    (QCheck.make ~print:(String.concat ".") gen)
    (fun labels ->
      match Name.decode (Name.encode labels) 0 with
      | Ok (got, used) -> got = labels && used = String.length (Name.encode labels)
      | Error _ -> false)

(* --- packets --- *)

let q () = Packet.query ~id:0x1234 (Name.of_string "ipv4.connman.net") Packet.A

let test_packet_roundtrip () =
  let answers =
    [
      Packet.a_record (Name.of_string "ipv4.connman.net") ~ttl:60 ~ipv4:0x5DB8D822;
      Packet.a_record (Name.of_string "ipv4.connman.net") ~ttl:60 ~ipv4:0x01020304;
    ]
  in
  let m = Packet.response ~query:(q ()) answers in
  let wire = Packet.encode m in
  match Packet.decode wire with
  | Error e -> Alcotest.fail e
  | Ok got ->
      check_int "id" 0x1234 got.Packet.header.Packet.id;
      check_bool "qr" true got.Packet.header.Packet.qr;
      check_int "answers" 2 (List.length got.Packet.answers);
      let a = List.hd got.Packet.answers in
      check_string "qname echo" "ipv4.connman.net"
        (Name.to_string (List.hd got.Packet.questions).Packet.qname);
      check_bool "ipv4 round trip" true
        (Packet.ipv4_of_rdata a.Packet.rdata = Some 0x5DB8D822)

let test_packet_compression_smaller () =
  let answers =
    [ Packet.a_record (Name.of_string "ipv4.connman.net") ~ttl:60 ~ipv4:1 ]
  in
  let m = Packet.response ~query:(q ()) answers in
  let c = Packet.encode ~compress:true m in
  let u = Packet.encode ~compress:false m in
  check_bool "compression shrinks" true (String.length c < String.length u);
  (* Both decode to the same message. *)
  match (Packet.decode c, Packet.decode u) with
  | Ok a, Ok b ->
      check_string "same qname"
        (Name.to_string (List.hd a.Packet.questions).Packet.qname)
        (Name.to_string (List.hd b.Packet.questions).Packet.qname);
      check_string "same rname"
        (Name.to_string (List.hd a.Packet.answers).Packet.rname)
        (Name.to_string (List.hd b.Packet.answers).Packet.rname)
  | _ -> Alcotest.fail "decode failed"

let test_packet_rejects_short () =
  match Packet.decode "short" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let prop_packet_roundtrip =
  let gen =
    QCheck.Gen.(
      let name =
        list_size (int_range 1 4)
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))
      in
      let* id = int_bound 0xFFFF in
      let* qname = name in
      let* n_answers = int_range 0 5 in
      let* ips = list_size (return n_answers) (int_bound 0x3FFFFFFF) in
      let query = Packet.query ~id qname Packet.A in
      return (Packet.response ~query (List.map (fun ip -> Packet.a_record qname ~ttl:60 ~ipv4:(ip land 0xFFFFFFFF)) ips)))
  in
  QCheck.Test.make ~name:"packet encode/decode round-trip" ~count:200
    (QCheck.make gen)
    (fun m ->
      match Packet.decode (Packet.encode m) with
      | Ok got ->
          got.Packet.header.Packet.id = m.Packet.header.Packet.id
          && List.length got.Packet.answers = List.length m.Packet.answers
          && List.map (fun (r : Packet.rr) -> r.Packet.rdata) got.Packet.answers
             = List.map (fun (r : Packet.rr) -> r.Packet.rdata) m.Packet.answers
      | Error _ -> false)

(* --- the label layout planner --- *)

let expand_ok wire =
  match Name.expand_like_connman wire 0 with
  | Ok (stream, _) -> stream
  | Error e -> Alcotest.fail ("expansion failed: " ^ e)

let test_plan_all_any () =
  match Craft.plan_labels (Craft.spec_any 500) with
  | Error e -> Alcotest.fail e
  | Ok wire ->
      let stream = expand_ok wire in
      check_int "expansion length" 500 (String.length stream)

let test_plan_fixed_payload_with_gaps () =
  (* 4 fixed bytes, a don't-care, 4 fixed bytes … — like a ROP chain with
     placeholder slots. *)
  let spec =
    Craft.spec_concat
      [
        Craft.spec_any 1;
        Craft.spec_fixed "\xB1\x12\x01\x00";
        Craft.spec_any 1;
        Craft.spec_fixed "\xE4\x53\xD8\x76";
        Craft.spec_any 1;
      ]
  in
  match Craft.plan_labels spec with
  | Error e -> Alcotest.fail e
  | Ok wire ->
      let stream = expand_ok wire in
      check_string "fixed bytes preserved" "\xB1\x12\x01\x00"
        (String.sub stream 1 4);
      check_string "second word preserved" "\xE4\x53\xD8\x76"
        (String.sub stream 6 4)

let test_plan_nop_sled_self_consistent () =
  (* A sled of 0x90 bytes is self-consistent (0x90 = 144 is a legal
     permissive label length) but *rigid*: every boundary inside it forces
     a 145-byte stride.  A feasible layout therefore sizes the sled as a
     whole number of 145-byte strides and follows the code with don't-care
     slack — exactly what the exploit builder does. *)
  let spec =
    Craft.spec_concat
      [
        Array.make 290 (Craft.Fixed '\x90');
        Craft.spec_fixed "\x31\xC0\x50";
        Craft.spec_any 60;
      ]
  in
  match Craft.plan_labels spec with
  | Error e -> Alcotest.fail e
  | Ok wire ->
      let stream = expand_ok wire in
      check_int "length" 353 (String.length stream);
      check_string "sled intact" (String.make 290 '\x90') (String.sub stream 0 290);
      check_string "code intact" "\x31\xC0\x50" (String.sub stream 290 3)

let test_plan_impossible_long_fixed_run () =
  (* 300 fixed non-length bytes cannot host a boundary. *)
  let spec = Array.make 300 (Craft.Fixed '\xFF') in
  match Craft.plan_labels spec with
  | Ok _ -> Alcotest.fail "expected planning failure"
  | Error _ -> ()

let test_plan_strict_rfc_mode () =
  match Craft.plan_labels ~label_max:63 (Craft.spec_any 200) with
  | Error e -> Alcotest.fail e
  | Ok wire ->
      (* Must also parse with the strict decoder. *)
      (match Name.decode wire 0 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("strict decode: " ^ e));
      check_int "expansion" 200 (String.length (expand_ok wire))

let gen_spec : Craft.byte_spec array QCheck.Gen.t =
  QCheck.Gen.(
    let* n = int_range 1 1200 in
    let* density = int_range 2 12 in
    array_size (return n)
      (let* fixed = int_bound density in
       if fixed = 0 then return Craft.Any
       else
         let* c = char in
         return (Craft.Fixed c)))

let prop_planner_sound =
  QCheck.Test.make ~name:"planned layout expands to the spec" ~count:300
    (QCheck.make gen_spec)
    (fun spec ->
      match Craft.plan_labels spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok wire -> (
          match Name.expand_like_connman wire 0 with
          | Error _ -> false
          | Ok (stream, consumed) ->
              consumed = String.length wire
              && String.length stream = Array.length spec
              && Array.for_all
                   (fun x -> x)
                   (Array.mapi
                      (fun i b ->
                        match b with
                        | Craft.Fixed c -> stream.[i] = c
                        | Craft.Any -> true)
                      spec)))

let prop_planner_total_on_sparse_specs =
  (* With a don't-care at least every 100 bytes, planning must succeed. *)
  QCheck.Test.make ~name:"planner succeeds on sparse specs" ~count:200
    QCheck.(int_range 1 15)
    (fun blocks ->
      let spec =
        Craft.spec_concat
          (List.concat_map
             (fun _ -> [ Craft.spec_any 1; Craft.spec_fixed (String.make 90 '\xFE') ])
             (List.init blocks Fun.id))
      in
      Result.is_ok (Craft.plan_labels spec))

(* --- hostile responses --- *)

let test_hostile_response_passes_validation () =
  let query = q () in
  let raw_name = Result.get_ok (Craft.plan_labels (Craft.spec_any 64)) in
  let wire = Craft.hostile_response ~query ~raw_name () in
  (* The skeleton decodes as a legitimate-looking response (the answer name
     is RFC-invalid only in its label lengths when > 63; with Any it uses
     max-length labels, so strict decode fails; but header/question checks
     pass). *)
  check_int "id echoed" 0x1234
    ((Char.code wire.[0] lsl 8) lor Char.code wire.[1]);
  check_bool "qr set" true (Char.code wire.[2] land 0x80 <> 0);
  check_int "ancount" 1 ((Char.code wire.[6] lsl 8) lor Char.code wire.[7])

let test_hostile_response_name_at_answer () =
  let query = q () in
  (* Position 0 of the expansion is always a length byte, so payloads lead
     with a don't-care slot. *)
  let spec = Craft.spec_concat [ Craft.spec_any 1; Craft.spec_fixed "ABC" ] in
  let raw_name = Result.get_ok (Craft.plan_labels spec) in
  let wire = Craft.hostile_response ~query ~raw_name () in
  (* Answer offset: 12 header + question (18 for ipv4.connman.net + 4). *)
  let qlen = String.length (Name.encode (Name.of_string "ipv4.connman.net")) in
  let off = 12 + qlen + 4 in
  match Name.expand_like_connman wire off with
  | Ok (stream, _) -> check_string "payload recovered" "ABC" (String.sub stream 1 3)
  | Error e -> Alcotest.fail e

let test_dos_name_expands_big () =
  let wire = Craft.dos_name ~size:8192 in
  match Name.expand_like_connman wire 0 with
  | Ok (stream, _) -> check_bool "big" true (String.length stream > 8192)
  | Error e -> Alcotest.fail e

let test_pointer_loop_response () =
  let query = q () in
  let wire =
    Craft.hostile_response ~query ~raw_name:(Craft.pointer_loop_name ()) ()
  in
  let qlen = String.length (Name.encode (Name.of_string "ipv4.connman.net")) in
  let off = 12 + qlen + 4 in
  (* Both the strict and the permissive expander must detect/err: the
     vulnerable machine-code path is the one that hangs. *)
  check_bool "strict rejects" true (Result.is_error (Name.decode wire off));
  check_bool "permissive detects loop" true
    (Result.is_error (Name.expand_like_connman wire off))

(* --- codec regressions ---

   Three bugs found while building the fuzzer, each with a test that
   fails on the pre-fix code. *)

(* Pre-fix, [Packet.encode] emitted any label length verbatim: 64..191
   collides with the reserved 0x40/0x80 bit patterns, >= 192 reads back
   as a compression pointer, and >= 256 crashed [Char.chr] with its own
   unhelpful message.  Now every bad length is rejected up front. *)
let test_encode_rejects_bad_labels () =
  let encode_with_label label =
    Packet.encode (Packet.query ~id:1 [ label; "example"; "com" ] Packet.A)
  in
  Alcotest.check_raises "64 rejected (reserved bits)"
    (Invalid_argument "Dns.Packet.encode: bad label length 64")
    (fun () -> ignore (encode_with_label (String.make 64 'a')));
  Alcotest.check_raises "192 rejected (pointer tag)"
    (Invalid_argument "Dns.Packet.encode: bad label length 192")
    (fun () -> ignore (encode_with_label (String.make 192 'a')));
  Alcotest.check_raises "300 rejected cleanly (was a Char.chr crash)"
    (Invalid_argument "Dns.Packet.encode: bad label length 300")
    (fun () -> ignore (encode_with_label (String.make 300 'a')));
  Alcotest.check_raises "empty label rejected"
    (Invalid_argument "Dns.Packet.encode: bad label length 0")
    (fun () -> ignore (encode_with_label ""));
  (* 63 is the RFC maximum and must still encode and round-trip. *)
  let wire = encode_with_label (String.make 63 'a') in
  match Packet.decode wire with
  | Ok m ->
      check_string "63-byte label round-trips"
        (String.make 63 'a')
        (List.hd (List.hd m.Packet.questions).Packet.qname)
  | Error e -> Alcotest.fail e

(* A CNAME/NS/PTR rdata is a domain name and may compress against the
   enclosing message.  Pre-fix, decode stored the raw rdata slice, so a
   compression pointer inside it indexed a message that was no longer
   there and [cname_of_rdata] returned [None] (or worse, wrong labels).
   The wire below answers "host.example.com A?" with a CNAME whose
   target is "alias" + pointer to "example.com" inside the question. *)
let compressed_cname_wire ~rtype_code ~rdlen =
  let buf = Buffer.create 64 in
  let u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  in
  u16 0x0777;
  u16 0x8180;
  u16 1 (* qd *);
  u16 1 (* an *);
  u16 0;
  u16 0;
  (* question at 12: "host" at 12, "example" at 17, "com" at 25 *)
  Buffer.add_string buf "\x04host\x07example\x03com\x00";
  u16 1 (* A *);
  u16 1 (* IN *);
  (* answer: name = pointer to the qname at 12 *)
  u16 0xC00C;
  u16 rtype_code;
  u16 1;
  u16 0;
  u16 60 (* ttl *);
  u16 rdlen;
  Buffer.add_string buf "\x05alias\xC0\x11" (* "alias" + ptr to offset 17 *);
  Buffer.contents buf

let test_rdata_compressed_name_expanded () =
  List.iter
    (fun (rtype_code, rtype) ->
      match Packet.decode (compressed_cname_wire ~rtype_code ~rdlen:8) with
      | Error e -> Alcotest.fail e
      | Ok m ->
          let rr = List.hd m.Packet.answers in
          check_bool "rtype decoded" true (rr.Packet.rtype = rtype);
          (* The stored rdata is the *uncompressed* wire form... *)
          check_string "rdata expanded against the message"
            "\x05alias\x07example\x03com\x00" rr.Packet.rdata;
          (* ...so the slice decodes in isolation. *)
          match Packet.cname_of_rdata rr.Packet.rdata with
          | Some labels ->
              check_string "full target recovered" "alias.example.com"
                (Name.to_string labels)
          | None -> Alcotest.fail "cname_of_rdata lost the compressed target")
    [ (5, Packet.CNAME); (2, Packet.NS); (12, Packet.PTR) ]

let test_rdata_name_overrun_rejected () =
  (* An rdlen lying short (name needs 8 bytes, rdlen says 2) must be an
     error, not a silent mis-slice. *)
  check_bool "short rdlen rejected" true
    (Result.is_error (Packet.decode (compressed_cname_wire ~rtype_code:5 ~rdlen:2)))

(* Pre-fix, [rcode_of_code] collapsed every code >= 6 to [Refused]:
   YXDomain(6) ... BADVERS(16 truncated) all looked like policy refusals
   to the cache layer.  Now unknown codes are preserved verbatim. *)
let test_rcode_preserved () =
  for code = 0 to 15 do
    let wire =
      let buf = Buffer.create 12 in
      let u16 v =
        Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
        Buffer.add_char buf (Char.chr (v land 0xFF))
      in
      u16 0x0042;
      u16 (0x8000 lor code);
      u16 0; u16 0; u16 0; u16 0;
      Buffer.contents buf
    in
    match Packet.decode wire with
    | Error e -> Alcotest.fail e
    | Ok m ->
        check_int
          (Printf.sprintf "rcode %d survives decode" code)
          code
          (Packet.rcode_code m.Packet.header.Packet.rcode);
        (* And survives a full encode/decode round trip. *)
        (match Packet.decode (Packet.encode m) with
        | Ok m' ->
            check_int
              (Printf.sprintf "rcode %d survives re-encode" code)
              code
              (Packet.rcode_code m'.Packet.header.Packet.rcode)
        | Error e -> Alcotest.fail e)
  done;
  (* The known codes still map to their named constructors. *)
  check_bool "5 is still Refused" true (Packet.rcode_of_code 5 = Packet.Refused);
  check_bool "11 is preserved raw" true
    (Packet.rcode_of_code 11 = Packet.Unknown_rcode 11)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dns"
    [
      ( "names",
        [
          Alcotest.test_case "string round-trip" `Quick test_name_string_roundtrip;
          Alcotest.test_case "wire encode" `Quick test_name_encode;
          Alcotest.test_case "decode simple" `Quick test_name_decode_simple;
          Alcotest.test_case "decode compressed" `Quick test_name_decode_compressed;
          Alcotest.test_case "pointer loop rejected" `Quick
            test_name_pointer_loop_rejected;
          Alcotest.test_case "truncation rejected" `Quick
            test_name_truncation_rejected;
          Alcotest.test_case "vulnerable expansion = raw stream" `Quick
            test_expand_like_connman_is_raw_stream;
          Alcotest.test_case "vulnerable expansion permissive" `Quick
            test_expand_like_connman_permissive;
          qt prop_name_encode_decode;
        ] );
      ( "packets",
        [
          Alcotest.test_case "response round-trip" `Quick test_packet_roundtrip;
          Alcotest.test_case "compression shrinks + agrees" `Quick
            test_packet_compression_smaller;
          Alcotest.test_case "short message rejected" `Quick test_packet_rejects_short;
          qt prop_packet_roundtrip;
        ] );
      ( "label planner",
        [
          Alcotest.test_case "all don't-care" `Quick test_plan_all_any;
          Alcotest.test_case "fixed payload with gaps" `Quick
            test_plan_fixed_payload_with_gaps;
          Alcotest.test_case "NOP sled self-consistent" `Quick
            test_plan_nop_sled_self_consistent;
          Alcotest.test_case "impossible fixed run" `Quick
            test_plan_impossible_long_fixed_run;
          Alcotest.test_case "strict RFC mode" `Quick test_plan_strict_rfc_mode;
          qt prop_planner_sound;
          qt prop_planner_total_on_sparse_specs;
        ] );
      ( "codec regressions",
        [
          Alcotest.test_case "encode rejects bad label lengths" `Quick
            test_encode_rejects_bad_labels;
          Alcotest.test_case "compressed rdata names expanded" `Quick
            test_rdata_compressed_name_expanded;
          Alcotest.test_case "rdata name overrun rejected" `Quick
            test_rdata_name_overrun_rejected;
          Alcotest.test_case "rcodes 6..15 preserved" `Quick test_rcode_preserved;
        ] );
      ( "hostile responses",
        [
          Alcotest.test_case "passes validation" `Quick
            test_hostile_response_passes_validation;
          Alcotest.test_case "payload at answer offset" `Quick
            test_hostile_response_name_at_answer;
          Alcotest.test_case "DoS name expands big" `Quick test_dos_name_expands_big;
          Alcotest.test_case "pointer-loop response" `Quick test_pointer_loop_response;
        ] );
    ]
