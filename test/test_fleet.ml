(* Fleet engine tests: the health state machine and supervision
   hierarchy contracts, the rollout planner, and the campaign acceptance
   criteria — 1,000 devices over 4 scheduler shards, seed-reproducible
   to the byte, compromises driven to zero by the staged rollout, one
   automatic rollback from the injected bad patch, and quarantined
   devices reintroduced after probation. *)

module H = Fleet.Health
module Hier = Fleet.Hierarchy
module R = Fleet.Rollout
module C = Fleet.Campaign
module Sup = Core.Supervisor
module Sim = Netsim.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- health state machine --- *)

let hcfg = { H.quarantine_crashes = 3; window_us = 1_000; probation_us = 5_000 }

let test_health_crash_path () =
  let h = H.create ~config:hcfg () in
  check_bool "starts healthy" true (H.state h = H.Healthy);
  ignore (H.observe h ~now:10 H.Crashed);
  check_bool "first crash degrades" true (H.state h = H.Degraded);
  ignore (H.observe h ~now:20 H.Probe_ok);
  check_bool "probe heals" true (H.state h = H.Healthy);
  (* Three crashes inside the window: the device-level crash-loop
     verdict. *)
  ignore (H.observe h ~now:100 H.Crashed);
  ignore (H.observe h ~now:200 H.Crashed);
  ignore (H.observe h ~now:300 H.Crashed);
  check_bool "crash loop quarantines" true (H.state h = H.Quarantined);
  check_int "one quarantine" 1 (H.quarantines h);
  ignore (H.observe h ~now:400 H.Probe_ok);
  check_bool "probe ignored while quarantined" true
    (H.state h = H.Quarantined);
  ignore (H.observe h ~now:5_300 H.Probation_over);
  check_bool "probation reintroduces" true (H.state h = H.Reintroduced);
  check_int "one reintroduction" 1 (H.reintroductions h);
  ignore (H.observe h ~now:5_400 H.Probe_ok);
  check_bool "probe heals a reintroduced device" true (H.state h = H.Healthy);
  (* The transition log kept every edge, oldest first. *)
  check_int "transition count" 6 (List.length (H.transitions h));
  check_bool "log is time-ordered" true
    (let ats = List.map (fun t -> t.H.at) (H.transitions h) in
     List.sort compare ats = ats)

let test_health_window_and_immediate_causes () =
  (* Crashes spread wider than the window degrade but never quarantine. *)
  let h = H.create ~config:hcfg () in
  ignore (H.observe h ~now:0 H.Crashed);
  ignore (H.observe h ~now:2_000 H.Crashed);
  ignore (H.observe h ~now:4_000 H.Crashed);
  check_bool "slow crashes only degrade" true (H.state h = H.Degraded);
  (* Compromise quarantines immediately, from any live state. *)
  ignore (H.observe h ~now:4_100 H.Compromised);
  check_bool "compromise quarantines" true (H.state h = H.Quarantined);
  let h2 = H.create ~config:hcfg () in
  ignore (H.observe h2 ~now:0 H.Crash_loop);
  check_bool "supervisor give-up quarantines from healthy" true
    (H.state h2 = H.Quarantined);
  (* Cell escalation is bulk containment: degraded devices only. *)
  let h3 = H.create ~config:hcfg () in
  ignore (H.observe h3 ~now:0 H.Cell_escalated);
  check_bool "escalation ignores a healthy device" true
    (H.state h3 = H.Healthy);
  ignore (H.observe h3 ~now:10 H.Crashed);
  ignore (H.observe h3 ~now:20 H.Cell_escalated);
  check_bool "escalation quarantines a degraded device" true
    (H.state h3 = H.Quarantined)

(* --- supervision hierarchy --- *)

module Fake_daemon = struct
  type t = { mutable up : bool }

  let kind = "fake"
  let alive t = t.up
  let restart t = t.up <- true
end

let test_hierarchy_escalation () =
  let sim = Sim.create ~seed:1 () in
  let hier = Hier.create ~escalate_frac:0.5 ~recover_frac:0.25 () in
  let cell = Hier.add_cell hier ~name:"lan-0" in
  let members =
    List.init 4 (fun i ->
        let d = { Fake_daemon.up = true } in
        let name = Printf.sprintf "m%d" i in
        let sup = Sup.supervise ~name sim (module Fake_daemon) d in
        let h = H.create ~config:hcfg () in
        Hier.attach cell ~name ~sup ~health:h;
        h)
  in
  check_int "cell size" 4 (Hier.cell_size cell);
  check_bool "starts ok" true (Hier.cell_state cell = `Ok);
  let fired = ref 0 in
  Hier.on_escalate cell (fun () -> incr fired);
  (* 1/4 down: degraded, below the escalation threshold. *)
  ignore (H.observe (List.nth members 0) ~now:0 H.Compromised);
  Hier.check hier cell ~now:0;
  check_bool "degraded below threshold" true (Hier.cell_state cell = `Degraded);
  check_int "cell down count" 1 (Hier.cell_down cell);
  check_int "no escalation yet" 0 !fired;
  (* 2/4 down reaches escalate_frac: the hook fires exactly once. *)
  ignore (H.observe (List.nth members 1) ~now:10 H.Compromised);
  Hier.check hier cell ~now:10;
  check_bool "escalated at threshold" true (Hier.cell_state cell = `Escalated);
  check_int "hook fired once" 1 !fired;
  Hier.check hier cell ~now:20;
  check_int "hysteresis: no refire while escalated" 1 !fired;
  check_int "one escalation counted" 1 (Hier.escalations hier);
  (* Down fraction back at recover_frac: the episode ends (and a later
     re-escalation may fire the hook again). *)
  ignore (H.observe (List.nth members 0) ~now:30 H.Probation_over);
  Hier.check hier cell ~now:30;
  check_bool "recovered below the hysteresis floor" true
    (Hier.cell_state cell <> `Escalated);
  Alcotest.(check (list (pair string int)))
    "fleet census by state"
    [ ("healthy", 2); ("degraded", 0); ("quarantined", 1); ("reintroduced", 1) ]
    (List.map (fun (s, n) -> (H.state_name s, n)) (Hier.state_counts hier));
  check_bool "edges were logged" true
    (List.exists (fun (_, c, w) -> c = "lan-0" && w = "escalated")
       (Hier.events hier))

(* --- rollout planner --- *)

let test_rollout_plan () =
  let waves = R.plan ~devices:100 ~canary:10 ~wave:40 ~bad_wave:(Some 2) in
  (match waves with
  | [ c; w1; w2; w3 ] ->
      check_string "canary label" "canary" c.R.w_label;
      check_int "canary size" 10 c.R.w_count;
      check_bool "canary is the real patch" false c.R.w_bad;
      check_int "wave-1 starts after the canary" 10 w1.R.w_first;
      check_int "wave-1 size" 40 w1.R.w_count;
      check_string "wave-2 label" "wave-2" w2.R.w_label;
      check_bool "bad wave flagged" true w2.R.w_bad;
      check_bool "other waves are good" false (w1.R.w_bad || w3.R.w_bad);
      check_int "last wave truncated to the fleet" 10 w3.R.w_count
  | ws -> Alcotest.failf "expected 4 waves, got %d" (List.length ws));
  check_int "waves cover every device exactly once" 100
    (List.fold_left (fun a w -> a + w.R.w_count) 0 waves);
  Alcotest.check_raises "devices must be positive"
    (Invalid_argument "Rollout.plan: devices must be positive") (fun () ->
      ignore (R.plan ~devices:0 ~canary:1 ~wave:1 ~bad_wave:None))

let test_rollout_decide () =
  check_bool "under threshold advances" true
    (R.decide ~size:40 ~hits:1 ~rollback_frac:0.05 = `Advance);
  check_bool "exactly at threshold advances (gate is strict)" true
    (R.decide ~size:20 ~hits:1 ~rollback_frac:0.05 = `Advance);
  check_bool "over threshold rolls back" true
    (R.decide ~size:20 ~hits:2 ~rollback_frac:0.05 = `Rollback);
  check_bool "empty wave advances" true
    (R.decide ~size:0 ~hits:0 ~rollback_frac:0.05 = `Advance)

(* --- campaign: smoke config --- *)

let test_campaign_smoke () =
  let r = C.run C.smoke_config in
  check_bool "acceptance predicate holds" true (C.ok r);
  check_bool "injected bad patch rolled back" true (r.C.r_rollbacks >= 1);
  check_bool "devices were quarantined" true (r.C.r_quarantines >= 1);
  check_bool "quarantined devices came back" true (r.C.r_reintroductions >= 1);
  check_bool "fleet converged on the good patch" true (r.C.r_converged_us >= 0);
  (match Telemetry.Json.validate (C.json r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "campaign json invalid: %s" e);
  (* Config validation rejects nonsense. *)
  (try
     ignore (C.run { C.smoke_config with C.devices = 0 });
     Alcotest.fail "expected Invalid_argument for devices = 0"
   with Invalid_argument _ -> ());
  try
    ignore (C.run { C.smoke_config with C.shards = 0 });
    Alcotest.fail "expected Invalid_argument for shards = 0"
  with Invalid_argument _ -> ()

(* --- campaign: full acceptance criteria --- *)

let test_campaign_acceptance () =
  let cfg = C.default_config in
  check_bool "scale floor: 1,000+ devices over >= 4 shards" true
    (cfg.C.devices >= 1000 && cfg.C.shards >= 4);
  let r1 = C.run cfg in
  let j1 = C.json r1 in
  (* Seed-reproducible: a second run emits byte-identical JSON. *)
  let r2 = C.run cfg in
  check_bool "byte-identical replay" true (String.equal j1 (C.json r2));
  check_bool "schema tag present" true
    (let tag = {|"schema": "fleet-campaign-v1"|} in
     let n = String.length tag in
     let rec go i =
       i + n <= String.length j1
       && (String.equal (String.sub j1 i n) tag || go (i + 1))
     in
     go 0);
  check_bool "campaign acceptance predicate" true (C.ok r1);
  (* Compromise rate falls to zero as rollout waves complete. *)
  let samples = r1.C.r_samples in
  check_bool "attack phase produced compromises" true
    (r1.C.r_compromises > 0
    && List.exists (fun s -> s.C.s_compromises > 0) samples);
  let last = List.nth samples (List.length samples - 1) in
  check_int "final sample window is compromise-free" 0 last.C.s_compromises;
  check_bool "converged before the horizon" true
    (r1.C.r_converged_us >= 0 && r1.C.r_converged_us < cfg.C.horizon_us);
  check_bool "no compromises once the fleet converged" true
    (List.for_all
       (fun s ->
         s.C.s_at_us <= r1.C.r_converged_us + cfg.C.sample_gap_us
         || s.C.s_compromises = 0)
       samples);
  (* The injected faulty patch triggered at least one automatic rollback,
     recorded both in the counter and in a wave outcome. *)
  check_bool "automatic rollback fired" true (r1.C.r_rollbacks >= 1);
  check_bool "a wave outcome records the rollback" true
    (List.exists (fun w -> w.C.o_rolled_back) r1.C.r_waves);
  (* Quarantine and probation did real work, including clearing
     supervisor give-ups via revive. *)
  check_bool "devices were quarantined" true (r1.C.r_quarantines > 0);
  check_bool "quarantined devices were reintroduced" true
    (r1.C.r_reintroductions > 0);
  check_bool "crash-looped supervisors were revived" true
    (r1.C.r_revivals >= 1);
  check_bool "LAN cells escalated" true (r1.C.r_escalations >= 1);
  check_bool "benign availability above one half" true
    (r1.C.r_availability > 0.5)

let () =
  Alcotest.run "fleet"
    [
      ( "health",
        [
          Alcotest.test_case "crash path through all four states" `Quick
            test_health_crash_path;
          Alcotest.test_case "window + immediate causes" `Quick
            test_health_window_and_immediate_causes;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "escalation threshold + hysteresis" `Quick
            test_hierarchy_escalation;
        ] );
      ( "rollout",
        [
          Alcotest.test_case "plan" `Quick test_rollout_plan;
          Alcotest.test_case "regression gate" `Quick test_rollout_decide;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "smoke config" `Quick test_campaign_smoke;
          Alcotest.test_case "full acceptance criteria" `Slow
            test_campaign_acceptance;
        ] );
    ]
