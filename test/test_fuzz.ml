(* Fuzz-style robustness tests: whatever bytes arrive, the host-side code
   must stay total (return values, never exceptions), and the daemon must
   classify every machine outcome.  The simulated overflow is allowed to
   crash the *guest*; nothing may crash the *host*. *)

module O = Machine.Outcome
module Dnsproxy = Connman.Dnsproxy

let lookup = Dns.Name.of_string "ipv4.connman.net"

let gen_bytes max_len =
  QCheck.Gen.(string_size ~gen:char (int_range 0 max_len))

(* --- codecs are total --- *)

let prop_packet_decode_total =
  QCheck.Test.make ~name:"Packet.decode never raises" ~count:1000
    (QCheck.make (gen_bytes 512))
    (fun bytes ->
      match Dns.Packet.decode bytes with Ok _ | Error _ -> true)

let prop_name_decode_total =
  QCheck.Test.make ~name:"Name.decode never raises" ~count:1000
    (QCheck.make (gen_bytes 256))
    (fun bytes ->
      match Dns.Name.decode bytes 0 with Ok _ | Error _ -> true)

let prop_vulnerable_expand_total =
  QCheck.Test.make ~name:"expand_like_connman never raises" ~count:1000
    (QCheck.make (gen_bytes 256))
    (fun bytes ->
      match Dns.Name.expand_like_connman bytes 0 with Ok _ | Error _ -> true)

let prop_decoders_total_on_random_words =
  QCheck.Test.make ~name:"instruction decoders never raise unexpectedly"
    ~count:2000
    QCheck.(make Gen.(pair (int_bound 0xFFFFFFF) (int_bound 0xF)))
    (fun (w, hi) ->
      let word = w lor (hi lsl 28) in
      (match Isa_arm.Decode.decode_word ~addr:0 word with
      | _ -> true
      | exception Isa_arm.Decode.Error _ -> true)
      &&
      let bytes =
        String.init 8 (fun i -> Char.chr ((word lsr (8 * (i land 3))) land 0xFF))
      in
      match Isa_x86.Decode.decode_with (fun i -> Char.code bytes.[i land 7]) 0 with
      | _ -> true
      | exception Isa_x86.Decode.Error _ -> true)

(* --- the daemon survives arbitrary garbage (host-side) --- *)

let classify_ok d disposition =
  match disposition with
  | Dnsproxy.Cached _ | Dnsproxy.Dropped _ -> Dnsproxy.alive d
  | Dnsproxy.Crashed _ | Dnsproxy.Compromised _ | Dnsproxy.Blocked _ ->
      not (Dnsproxy.alive d)

let prop_daemon_total_on_garbage =
  QCheck.Test.make ~name:"daemon handles arbitrary datagrams" ~count:200
    (QCheck.make (gen_bytes 300))
    (fun bytes ->
      let d = Dnsproxy.create Dnsproxy.default_config in
      ignore (Dnsproxy.make_query d lookup);
      classify_ok d (Dnsproxy.handle_response d bytes))

(* Garbage that passes pre-validation: correct header/id/question, random
   answer-section bytes — this drives the vulnerable machine code with
   arbitrary input. *)
let prop_daemon_total_on_hostile_answers =
  QCheck.Test.make ~name:"daemon classifies arbitrary answer sections" ~count:150
    (QCheck.make (gen_bytes 600))
    (fun garbage ->
      let d = Dnsproxy.create Dnsproxy.default_config in
      let query = Dnsproxy.make_query d lookup in
      let wire =
        (* Hand-build: header + question echo + raw garbage as the answer
           section. *)
        let buf = Buffer.create 128 in
        let u16 v =
          Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
          Buffer.add_char buf (Char.chr (v land 0xFF))
        in
        u16 query.Dns.Packet.header.Dns.Packet.id;
        u16 0x8180;
        u16 1;
        u16 1;
        u16 0;
        u16 0;
        Buffer.add_string buf (Dns.Name.encode lookup);
        u16 1;
        u16 1;
        Buffer.add_string buf garbage;
        Buffer.contents buf
      in
      classify_ok d (Dnsproxy.handle_response d wire))

let prop_daemon_random_label_streams =
  (* Arbitrary label streams (valid-shaped but arbitrary contents): the
     machine may crash, hang, or parse; the host must classify. *)
  QCheck.Test.make ~name:"daemon classifies random label streams" ~count:150
    QCheck.(make Gen.(list_size (int_range 0 80) (pair (int_range 1 63) (int_bound 255))))
    (fun labels ->
      let d = Dnsproxy.create Dnsproxy.default_config in
      let query = Dnsproxy.make_query d lookup in
      let raw_name =
        let buf = Buffer.create 256 in
        List.iter
          (fun (len, fill) ->
            Buffer.add_char buf (Char.chr len);
            Buffer.add_string buf (String.make len (Char.chr fill)))
          labels;
        Buffer.add_char buf '\x00';
        Buffer.contents buf
      in
      let wire = Dns.Craft.hostile_response ~query ~raw_name () in
      classify_ok d (Dnsproxy.handle_response d wire))

(* Truncated real responses at every length: a classic parser gauntlet. *)
let test_truncation_gauntlet () =
  let d0 = Dnsproxy.create Dnsproxy.default_config in
  let query = Dnsproxy.make_query d0 lookup in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query
         [ Dns.Packet.a_record lookup ~ttl:60 ~ipv4:0x01020304 ])
  in
  for len = 0 to String.length wire - 1 do
    let d = Dnsproxy.create Dnsproxy.default_config in
    ignore (Dnsproxy.make_query d lookup);
    let truncated = String.sub wire 0 len in
    match Dnsproxy.handle_response d truncated with
    | Dnsproxy.Cached _ | Dnsproxy.Dropped _ | Dnsproxy.Crashed _
    | Dnsproxy.Compromised _ | Dnsproxy.Blocked _ ->
        ()
  done

(* --- the mutation grammar --- *)

module Mutator = Fuzz.Mutator
module Engine = Fuzz.Engine

let benign_pool = lazy (Array.of_list (Engine.benign_seeds ()))

let pick_other_from rng =
  let pool = Lazy.force benign_pool in
  fun () -> pool.(Memsim.Rng.int rng (Array.length pool))

(* Totality over arbitrary inputs, including the tiny ones: a truncate
   can leave 1-3 bytes, after which the header-targeting operators used
   to index out of bounds (a fuzzer-found bug in the fuzzer). *)
let prop_mutator_total =
  QCheck.Test.make ~name:"mutate is total, bounded, non-empty" ~count:500
    QCheck.(pair small_nat (make (gen_bytes 80)))
    (fun (seed, input) ->
      let rng = Memsim.Rng.create seed in
      let pick_other = pick_other_from rng in
      let s = ref input in
      for _ = 1 to 40 do
        s := Mutator.mutate rng ~max_len:256 ~pick_other !s
      done;
      String.length !s > 0 && String.length !s <= 256)

let test_mutator_short_input_regression () =
  (* Drive every operator against 1..11-byte inputs: pre-fix this hit
     "index out of bounds" in op_flag_flip / op_count_lie (seed 5 of the
     smoke campaign found it via truncate-then-flag-flip). *)
  for seed = 0 to 50 do
    let rng = Memsim.Rng.create seed in
    let pick_other = pick_other_from rng in
    for len = 1 to 11 do
      let s = ref (String.make len 'x') in
      for _ = 1 to 30 do
        s := Mutator.mutate rng ~max_len:64 ~pick_other !s
      done
    done
  done

let prop_mutator_deterministic =
  QCheck.Test.make ~name:"mutation stream is a pure function of the seed"
    ~count:100 QCheck.small_nat
    (fun seed ->
      let stream seed =
        let rng = Memsim.Rng.create seed in
        let pick_other = pick_other_from rng in
        let s = ref (Lazy.force benign_pool).(0) in
        List.init 30 (fun _ ->
            s := Mutator.mutate rng ~max_len:512 ~pick_other !s;
            !s)
      in
      stream seed = stream seed)

let prop_wire_map_total =
  QCheck.Test.make ~name:"wire_map never raises, offsets in bounds" ~count:500
    (QCheck.make (gen_bytes 300))
    (fun bytes ->
      let wm = Mutator.wire_map bytes in
      let n = String.length bytes in
      List.for_all (fun o -> o >= 0 && o < n) wm.Mutator.label_offs
      && List.for_all (fun o -> o >= 0 && o + 2 <= n) wm.Mutator.rdlen_offs)

let test_wire_map_finds_structure () =
  (* On a well-formed compressed response the walker must locate real
     label-length bytes and the real rdlen field. *)
  let wire = List.hd (Engine.benign_seeds ()) in
  let wm = Mutator.wire_map wire in
  Alcotest.(check bool) "found labels" true (List.length wm.Mutator.label_offs > 0);
  List.iter
    (fun off ->
      let b = Char.code wire.[off] in
      Alcotest.(check bool)
        (Printf.sprintf "offset %d is a plausible length byte" off)
        true
        (b > 0 && b < 64);
      Alcotest.(check bool)
        (Printf.sprintf "label at %d fits the message" off)
        true
        (off + 1 + b <= String.length wire))
    wm.Mutator.label_offs;
  match wm.Mutator.rdlen_offs with
  | [ off ] ->
      let rdlen = (Char.code wire.[off] lsl 8) lor Char.code wire.[off + 1] in
      Alcotest.(check int) "A-record rdlen" 4 rdlen;
      Alcotest.(check int) "rdata ends the message" (String.length wire) (off + 2 + 4)
  | offs -> Alcotest.failf "expected one rdlen field, found %d" (List.length offs)

(* Encode/decode round-trip over the mutation grammar: wherever a mutant
   still decodes, re-encoding the decoded message and decoding again is
   the identity.  This leans on all three codec fixes at once — decoded
   labels are always encodable (<= 63), CNAME rdata is stored
   uncompressed so it survives re-encoding out of context, and rcodes
   6..15 are preserved rather than collapsed. *)
let prop_mutated_roundtrip =
  QCheck.Test.make ~name:"decode o encode = id on decodable mutants" ~count:300
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, which) ->
      let rng = Memsim.Rng.create (succ seed) in
      let pick_other = pick_other_from rng in
      let s = ref (Lazy.force benign_pool).(which) in
      let ok = ref true in
      for _ = 1 to 25 do
        s := Mutator.mutate rng ~max_len:512 ~pick_other !s;
        match Dns.Packet.decode !s with
        | Error _ -> ()
        | Ok m -> (
            match Dns.Packet.decode (Dns.Packet.encode ~compress:false m) with
            | Ok m' -> if m' <> m then ok := false
            | Error _ -> ok := false)
      done;
      !ok)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex_of_string/string_of_hex inverse" ~count:300
    (QCheck.make (gen_bytes 100))
    (fun s -> Engine.string_of_hex (Engine.hex_of_string s) = s)

(* --- engine determinism --- *)

let test_engine_deterministic () =
  List.iter
    (fun arch ->
      let cfg = { Engine.default_config with Engine.arch; max_execs = 120 } in
      let a = Engine.run cfg and b = Engine.run cfg in
      Alcotest.(check string)
        (Loader.Arch.name arch ^ ": stats JSON byte-identical")
        (Engine.stats_json a) (Engine.stats_json b);
      Alcotest.(check bool)
        (Loader.Arch.name arch ^ ": executions happened")
        true
        (a.Engine.execs = 120 && a.Engine.edges > 0 && a.Engine.total_steps > 0))
    [ Loader.Arch.X86; Loader.Arch.Arm ]

(* --- regression corpus replay ---

   Every committed fuzzer-found input must still overflow the Listing-1
   buffer and be triaged as a redzone write with wire-byte provenance,
   on both ISAs.  The replay dogfoods the snapshot layer the fuzzer
   uses: one boot per ISA, restore between inputs. *)

let replay_corpus_on arch =
  let profile = Defense.Profile.wx in
  let spec =
    match arch with
    | Loader.Arch.X86 ->
        Connman.Program_x86.spec ~version:Connman.Version.v1_34 ~profile ()
    | Loader.Arch.Arm ->
        Connman.Program_arm.spec ~version:Connman.Version.v1_34 ~profile ()
  in
  let proc = Loader.Process.boot spec ~profile ~seed:99 in
  let snap = Loader.Process.snapshot proc in
  let entry = Loader.Process.symbol proc "parse_response" in
  let buf = proc.Loader.Process.layout.Loader.Layout.heap_base in
  let geometry = Connman.Frame.geometry arch in
  let frame_buffer = Connman.Frame.buffer_addr proc in
  let oracle = Sanitizer.Oracle.create () in
  List.iter
    (fun (name, hex) ->
      let input = Engine.string_of_hex hex in
      Loader.Process.restore proc snap;
      Memsim.Memory.write_bytes proc.Loader.Process.mem buf input;
      Sanitizer.Oracle.begin_parse oracle;
      Sanitizer.Oracle.clear_reports oracle;
      let src =
        Sanitizer.Oracle.new_source oracle ~origin:"fuzz"
          ~length:(String.length input)
      in
      Sanitizer.Oracle.taint oracle ~src buf ~len:(String.length input);
      Sanitizer.Oracle.protect_frame oracle ~buffer:frame_buffer geometry;
      let r =
        Loader.Process.call proc ~fuel:400_000 ~sanitizer:oracle ~entry
          ~args:[ buf; String.length input ]
      in
      let tag = Printf.sprintf "%s/%s" (Loader.Arch.name arch) name in
      Alcotest.(check bool)
        (tag ^ ": still crashes the guest")
        true
        (r.Loader.Process.outcome <> O.Halted);
      match Sanitizer.Oracle.first_report oracle with
      | None -> Alcotest.fail (tag ^ ": oracle fired no report")
      | Some rp ->
          Alcotest.(check string)
            (tag ^ ": triaged as redzone write")
            "redzone-write"
            (Sanitizer.Oracle.kind_name rp.Sanitizer.Oracle.kind);
          Alcotest.(check bool)
            (tag ^ ": wire provenance intact")
            true
            (Sanitizer.Oracle.wire_offset rp >= 0
            && Sanitizer.Oracle.wire_offset rp < String.length input))
    Corpus_data.entries

let test_corpus_replay_x86 () = replay_corpus_on Loader.Arch.X86
let test_corpus_replay_arm () = replay_corpus_on Loader.Arch.Arm

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ( "codecs",
        [
          qt prop_packet_decode_total;
          qt prop_name_decode_total;
          qt prop_vulnerable_expand_total;
          qt prop_decoders_total_on_random_words;
        ] );
      ( "daemon",
        [
          qt prop_daemon_total_on_garbage;
          qt prop_daemon_total_on_hostile_answers;
          qt prop_daemon_random_label_streams;
          Alcotest.test_case "truncation gauntlet" `Quick test_truncation_gauntlet;
        ] );
      ( "mutator",
        [
          qt prop_mutator_total;
          Alcotest.test_case "short inputs (regression)" `Quick
            test_mutator_short_input_regression;
          qt prop_mutator_deterministic;
          qt prop_wire_map_total;
          Alcotest.test_case "wire_map finds real structure" `Quick
            test_wire_map_finds_structure;
          qt prop_mutated_roundtrip;
          qt prop_hex_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "seed-deterministic stats" `Slow
            test_engine_deterministic;
        ] );
      ( "regression corpus",
        [
          Alcotest.test_case "replay on x86" `Quick test_corpus_replay_x86;
          Alcotest.test_case "replay on arm" `Quick test_corpus_replay_arm;
        ] );
    ]
