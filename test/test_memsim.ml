(* Unit and property tests for the paged memory simulator. *)

module Mem = Memsim.Memory
module Word = Memsim.Word

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh () = Mem.create ()

let expect_fault kind f =
  match f () with
  | _ -> Alcotest.fail "expected a memory fault"
  | exception Mem.Fault fault ->
      Alcotest.(check bool)
        "fault kind"
        true
        (fault.Mem.kind = kind)

(* --- Word arithmetic --- *)

let test_word_wrap () =
  check_int "add wraps" 0 (Word.add 0xFFFF_FFFF 1);
  check_int "sub wraps" 0xFFFF_FFFF (Word.sub 0 1);
  check_int "neg" 0xFFFF_FFFF (Word.neg 1);
  check_int "signed round trip" (-1) (Word.to_signed 0xFFFF_FFFF);
  check_int "of_signed" 0xFFFF_FFFE (Word.of_signed (-2));
  check_int "sign8" 0xFFFF_FF80 (Word.sign8 0x80);
  check_int "sign8 positive" 0x7F (Word.sign8 0x7F);
  check_int "sign16" 0xFFFF_8000 (Word.sign16 0x8000);
  check_int "ror" 0x8000_0000 (Word.ror 1 1);
  check_int "ror 8" 0x1200_0000 (Word.ror 0x12 8);
  check_bool "bit 31" true (Word.bit 0x8000_0000 31)

let prop_word_signed_roundtrip =
  QCheck.Test.make ~name:"word signed round-trip" ~count:500
    QCheck.(int_range (-0x4000_0000) 0x3FFF_FFFF)
    (fun x -> Word.to_signed (Word.of_signed x) = x)

(* --- Mapping --- *)

let test_map_read_write () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rw ~name:"data";
  Mem.write_u32 m 0x1000 0xDEADBEEF;
  check_int "u32 round trip" 0xDEADBEEF (Mem.read_u32 m 0x1000);
  Mem.write_u16 m 0x1100 0xBEEF;
  check_int "u16 round trip" 0xBEEF (Mem.read_u16 m 0x1100);
  check_int "u8 of u16" 0xEF (Mem.read_u8 m 0x1100);
  check_int "zero-filled" 0 (Mem.read_u32 m 0x1ffc)

let test_little_endian () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"d";
  Mem.write_u32 m 0x1000 0x11223344;
  check_int "byte 0 is LSB" 0x44 (Mem.read_u8 m 0x1000);
  check_int "byte 3 is MSB" 0x11 (Mem.read_u8 m 0x1003)

let test_cross_page () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rw ~name:"d";
  (* A u32 straddling the page boundary at 0x2000. *)
  Mem.write_u32 m 0x1ffe 0xCAFEBABE;
  check_int "cross-page u32" 0xCAFEBABE (Mem.read_u32 m 0x1ffe)

let test_unmapped_fault () =
  let m = fresh () in
  expect_fault Mem.Unmapped (fun () -> Mem.read_u8 m 0x5000)

let test_overlap_rejected () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"a";
  Alcotest.check_raises "overlap"
    (Invalid_argument
       "Memory.map: b overlaps existing mapping at page 0x00001000")
    (fun () -> Mem.map m ~base:0x1800 ~size:0x100 ~perm:Mem.rw ~name:"b")

let test_unmap () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"a";
  Mem.unmap m ~base:0x1000;
  check_bool "gone" false (Mem.is_mapped m 0x1000);
  (* Remapping the freed range must succeed. *)
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"a2";
  check_bool "back" true (Mem.is_mapped m 0x1000)

(* --- Permissions: the W⊕X substrate --- *)

let test_write_protect () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rx ~name:"text";
  expect_fault Mem.Perm_write (fun () -> Mem.write_u8 m 0x1000 1)

let test_nx_fetch () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"stack";
  check_int "plain read ok" 0 (Mem.read_u8 m 0x1000);
  expect_fault Mem.Perm_exec (fun () -> Mem.fetch_u8 m 0x1000)

let test_executable_stack_fetch () =
  (* With W⊕X disabled the stack is rwx and fetch succeeds — the
     no-protections configuration of the paper's §III-A. *)
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rwx ~name:"stack";
  Mem.write_u8 m 0x1000 0x90;
  check_int "fetch from rwx" 0x90 (Mem.fetch_u8 m 0x1000)

let test_mprotect () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rwx ~name:"stack";
  Mem.set_perm m ~base:0x1000 Mem.rw;
  expect_fault Mem.Perm_exec (fun () -> Mem.fetch_u8 m 0x1000);
  check_bool "region perm updated" false
    (Mem.find_region m "stack").Mem.perm.Mem.execute

let test_region_queries () =
  let m = fresh () in
  Mem.map m ~base:0x8048000 ~size:0x1000 ~perm:Mem.rx ~name:"text";
  Mem.map m ~base:0x804A000 ~size:0x1000 ~perm:Mem.rw ~name:"bss";
  (match Mem.region_at m 0x8048123 with
  | Some r0 -> check_string "region name" "text" r0.Mem.name
  | None -> Alcotest.fail "expected region");
  check_bool "miss" true (Mem.region_at m 0x9000000 = None);
  check_int "regions sorted" 2 (List.length (Mem.regions m));
  check_int "find by name" 0x804A000 (Mem.find_region m "bss").Mem.base

let test_bytes_and_cstring () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"d";
  Mem.write_bytes m 0x1000 "/bin/sh\x00tail";
  check_string "cstring stops at NUL" "/bin/sh" (Mem.read_cstring m 0x1000);
  check_string "read_bytes exact" "/bin/sh\x00" (Mem.read_bytes m 0x1000 8)

let test_peek_poke_bypass_perms () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.r ~name:"ro";
  Mem.poke_bytes m 0x1000 "hi";
  check_string "poke wrote" "hi" (Mem.peek_bytes m 0x1000 2)

let test_hexdump () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"d";
  Mem.write_bytes m 0x1000 "ABC";
  let dump = Mem.hexdump m ~base:0x1000 ~len:16 in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "hex bytes present" true (contains dump "41 42 43");
  check_bool "ascii present" true (contains dump "ABC")

let prop_byte_roundtrip =
  QCheck.Test.make ~name:"byte round-trip at random offsets" ~count:500
    QCheck.(pair (int_range 0 0xFFF) (int_range 0 255))
    (fun (off, v) ->
      let m = fresh () in
      Mem.map m ~base:0x4000 ~size:0x1000 ~perm:Mem.rw ~name:"d";
      Mem.write_u8 m (0x4000 + off) v;
      Mem.read_u8 m (0x4000 + off) = v)

let prop_u32_roundtrip =
  QCheck.Test.make ~name:"u32 round-trip incl. page straddles" ~count:500
    QCheck.(pair (int_range 0 0x1FFC) (int_range 0 0x3FFF_FFFF))
    (fun (off, v) ->
      let m = fresh () in
      Mem.map m ~base:0x4000 ~size:0x2000 ~perm:Mem.rw ~name:"d";
      Mem.write_u32 m (0x4000 + off) v;
      Mem.read_u32 m (0x4000 + off) = v)

let prop_write_bytes_read_bytes =
  QCheck.Test.make ~name:"write_bytes/read_bytes identity" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 600))
    (fun s ->
      let m = fresh () in
      Mem.map m ~base:0x4000 ~size:0x2000 ~perm:Mem.rw ~name:"d";
      Mem.write_bytes m 0x4100 s;
      Mem.read_bytes m 0x4100 (String.length s) = s)

let prop_rng_deterministic =
  QCheck.Test.make ~name:"rng determinism per seed" ~count:100 QCheck.small_nat
    (fun seed ->
      let a = Memsim.Rng.create seed and b = Memsim.Rng.create seed in
      List.for_all
        (fun _ -> Memsim.Rng.next64 a = Memsim.Rng.next64 b)
        [ 1; 2; 3; 4; 5 ])

let prop_rng_bound =
  QCheck.Test.make ~name:"rng int within bound" ~count:500
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Memsim.Rng.create seed in
      let v = Memsim.Rng.int g bound in
      v >= 0 && v < bound)

let test_rng_shuffle_permutes () =
  let g = Memsim.Rng.create 42 in
  let a = Array.init 100 Fun.id in
  Memsim.Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

(* --- Atomicity of multi-byte writes (torn-write regressions) --- *)

let expect_fault_at kind addr f =
  match f () with
  | _ -> Alcotest.fail "expected a memory fault"
  | exception Mem.Fault fault ->
      check_bool "fault kind" true (fault.Mem.kind = kind);
      check_int "fault at lowest offending address" addr fault.Mem.addr

(* A u32 straddling into an unmapped page must fault without committing
   its first bytes (the regression: the old byte-at-a-time loop left a
   torn prefix behind). *)
let test_torn_write_u32_unmapped () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"lo";
  Mem.write_u8 m 0x1FFE 0xAB;
  Mem.write_u8 m 0x1FFF 0xCD;
  expect_fault_at Mem.Unmapped 0x2000 (fun () ->
      Mem.write_u32 m 0x1FFE 0x1122_3344);
  check_int "prefix byte 0 untouched" 0xAB (Mem.read_u8 m 0x1FFE);
  check_int "prefix byte 1 untouched" 0xCD (Mem.read_u8 m 0x1FFF)

let test_torn_write_u32_protected () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"lo";
  Mem.map m ~base:0x2000 ~size:0x1000 ~perm:Mem.r ~name:"ro";
  Mem.write_u8 m 0x1FFF 0x5A;
  expect_fault_at Mem.Perm_write 0x2000 (fun () ->
      Mem.write_u32 m 0x1FFF 0xDEAD_BEEF);
  check_int "prefix byte untouched" 0x5A (Mem.read_u8 m 0x1FFF)

let test_torn_write_bytes () =
  let m = fresh () in
  (* Three-page span with the middle page missing: nothing at all may
     land, including the bytes destined for the (valid) first page. *)
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"lo";
  Mem.map m ~base:0x3000 ~size:0x1000 ~perm:Mem.rw ~name:"hi";
  let payload = String.make 0x2100 'X' in
  expect_fault_at Mem.Unmapped 0x2000 (fun () ->
      Mem.write_bytes m 0x1F00 payload);
  check_int "first page untouched" 0 (Mem.read_u8 m 0x1F00);
  check_int "last page untouched" 0 (Mem.read_u8 m 0x3000);
  (* Same span for the loader's permission-blind poke. *)
  expect_fault_at Mem.Unmapped 0x2000 (fun () ->
      Mem.poke_bytes m 0x1F00 payload);
  check_int "poke left no prefix" 0 (Mem.read_u8 m 0x1F00)

(* --- Descriptive errors instead of bare Not_found --- *)

let contains_sub haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let expect_invalid_arg needle f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      check_bool
        (Printf.sprintf "message %S mentions %S" msg needle)
        true (contains_sub msg needle)

let test_descriptive_errors () =
  let m = fresh () in
  Mem.map m ~base:0x4000 ~size:0x1000 ~perm:Mem.rw ~name:"heap";
  expect_invalid_arg "unmap" (fun () -> Mem.unmap m ~base:0x9000);
  expect_invalid_arg "0x00009000" (fun () -> Mem.unmap m ~base:0x9000);
  expect_invalid_arg "set_perm" (fun () -> Mem.set_perm m ~base:0x9000 Mem.r);
  expect_invalid_arg "no region named" (fun () ->
      ignore (Mem.find_region m "nope"));
  expect_invalid_arg "nope" (fun () -> ignore (Mem.find_region m "nope"))

(* --- Write generations and generation cells --- *)

let test_page_generations () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rw ~name:"a";
  check_int "unmapped is -1" (-1) (Mem.page_gen m 0x9000);
  let g0 = Mem.page_gen m 0x1000 in
  let g_other = Mem.page_gen m 0x2000 in
  check_bool "live generations are positive" true (g0 > 0);
  Mem.write_u8 m 0x1004 7;
  let g1 = Mem.page_gen m 0x1000 in
  check_bool "store bumps" true (g1 <> g0);
  check_int "other page unaffected" g_other (Mem.page_gen m 0x2000);
  Mem.set_perm m ~base:0x1000 Mem.r;
  check_bool "mprotect bumps" true (Mem.page_gen m 0x1000 <> g1);
  (* Generations are never reused across a page's lifetimes. *)
  let before = Mem.page_gen m 0x1000 in
  Mem.unmap m ~base:0x1000;
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rw ~name:"a2";
  check_bool "remap gets a fresh generation" true
    (Mem.page_gen m 0x1000 <> before)

let test_gen_ref_cells () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rw ~name:"a";
  let cell = Mem.gen_ref m 0x1234 in
  check_int "cell tracks page_gen" (Mem.page_gen m 0x1000) !cell;
  Mem.write_u8 m 0x1000 1;
  check_int "cell sees the bump directly" (Mem.page_gen m 0x1000) !cell;
  check_bool "same page, same cell" true (cell == Mem.gen_ref m 0x1FFF);
  let snapshot = !cell in
  Mem.unmap m ~base:0x1000;
  check_bool "unmap retires the cell's value" true (!cell <> snapshot);
  expect_fault Mem.Unmapped (fun () -> Mem.gen_ref m 0x1000)

(* --- Icache: hits, misses, and every invalidation source --- *)

let icache_fixture () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rwx ~name:"text";
  let c = Memsim.Icache.create ~dummy:0 m in
  let calls = ref 0 in
  let decode _mem addr =
    incr calls;
    (addr * 10, 4)
  in
  (m, c, calls, decode)

let test_icache_hit_and_miss () =
  let m, c, calls, decode = icache_fixture () in
  ignore m;
  let e = Memsim.Icache.lookup c 0x1008 ~decode in
  check_int "decoded value" (0x1008 * 10) e.Memsim.Icache.v;
  check_int "decoded length" 4 e.Memsim.Icache.len;
  check_int "one decode" 1 !calls;
  let e2 = Memsim.Icache.lookup c 0x1008 ~decode in
  check_int "hit returns same value" e.Memsim.Icache.v e2.Memsim.Icache.v;
  check_int "no second decode" 1 !calls;
  check_bool "hit counted" true (Memsim.Icache.hits c = 1);
  check_bool "miss counted" true (Memsim.Icache.misses c = 1);
  (* A different address on the same page is its own slot. *)
  ignore (Memsim.Icache.lookup c 0x100C ~decode);
  check_int "separate slot decodes" 2 !calls

let test_icache_write_invalidates () =
  let m, c, calls, decode = icache_fixture () in
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  Mem.write_u8 m 0x1FFF 0x90;
  (* Any store to the page stales every entry on it. *)
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  check_int "re-decoded after store" 2 !calls;
  (* A store to a different page does not. *)
  Mem.write_u8 m 0x2000 0x90;
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  check_int "unrelated store is free" 2 !calls

let test_icache_perm_and_unmap_invalidate () =
  let m, c, calls, decode = icache_fixture () in
  ignore (Memsim.Icache.lookup c 0x1000 ~decode);
  Mem.set_perm m ~base:0x1000 Mem.rx;
  ignore (Memsim.Icache.lookup c 0x1000 ~decode);
  check_int "mprotect forces re-decode" 2 !calls;
  Mem.unmap m ~base:0x1000;
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rwx ~name:"text2";
  ignore (Memsim.Icache.lookup c 0x1000 ~decode);
  check_int "unmap/remap forces re-decode" 3 !calls

let test_icache_straddling_entry () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rwx ~name:"text";
  let c = Memsim.Icache.create ~dummy:0 m in
  let calls = ref 0 in
  let decode _ addr =
    incr calls;
    (addr, 6)
  in
  (* 6 bytes starting 2 before the page boundary: the entry depends on
     both pages' generations. *)
  let e = Memsim.Icache.lookup c 0x1FFE ~decode in
  check_bool "entry records both pages" true
    (not (e.Memsim.Icache.lo == e.Memsim.Icache.hi));
  ignore (Memsim.Icache.lookup c 0x1FFE ~decode);
  check_int "hit while both pages clean" 1 !calls;
  (* Touching the second page alone must invalidate. *)
  Mem.write_u8 m 0x2800 1;
  ignore (Memsim.Icache.lookup c 0x1FFE ~decode);
  check_int "second-page store invalidates" 2 !calls;
  (* And a non-straddling entry shares one cell for both ends. *)
  let e2 = Memsim.Icache.lookup c 0x1100 ~decode in
  check_bool "same-page entry aliases its cells" true
    (e2.Memsim.Icache.lo == e2.Memsim.Icache.hi)

(* --- Copy-on-write snapshots --- *)

let test_snapshot_restore_bytes () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x3000 ~perm:Mem.rw ~name:"d";
  Mem.write_bytes m 0x1000 "original";
  Mem.write_u32 m 0x2FFC 0xCAFE;
  let snap = Mem.snapshot m in
  check_int "snapshot pins the pages" 3 (Mem.snapshot_pages snap);
  Mem.write_bytes m 0x1000 "clobber!";
  Mem.write_u32 m 0x2FFC 0xDEAD;
  Mem.write_u8 m 0x2000 0x55;
  Mem.restore m snap;
  check_string "first page restored" "original" (Mem.read_bytes m 0x1000 8);
  check_int "last page restored" 0xCAFE (Mem.read_u32 m 0x2FFC);
  check_int "middle page restored to zero" 0 (Mem.read_u8 m 0x2000);
  (* The snapshot stays valid: dirty and restore again. *)
  Mem.write_bytes m 0x1000 "again!!!";
  Mem.restore m snap;
  check_string "second restore identical" "original" (Mem.read_bytes m 0x1000 8)

let test_snapshot_gen_contract () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rwx ~name:"text";
  Mem.write_u8 m 0x1000 0x90;
  let snap = Mem.snapshot m in
  let g_text = Mem.page_gen m 0x1000 in
  let g_data = Mem.page_gen m 0x2000 in
  Mem.write_u8 m 0x2000 1;
  let g_dirty = Mem.page_gen m 0x2000 in
  check_bool "store bumps even when frozen" true (g_dirty <> g_data);
  Mem.restore m snap;
  (* Untouched pages keep their generation (cached decodes stay hot);
     dirtied pages come back under a *fresh* one (caches must refill) —
     the counter never rewinds. *)
  check_int "untouched page keeps its generation" g_text (Mem.page_gen m 0x1000);
  let g_back = Mem.page_gen m 0x2000 in
  check_bool "dirty page gets a fresh generation" true
    (g_back <> g_data && g_back <> g_dirty);
  check_int "bytes came back" 0 (Mem.read_u8 m 0x2000)

let test_snapshot_region_table () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x1000 ~perm:Mem.rx ~name:"a";
  let snap = Mem.snapshot m in
  Mem.set_perm m ~base:0x1000 Mem.rw;
  Mem.map m ~base:0x5000 ~size:0x1000 ~perm:Mem.rw ~name:"b";
  Mem.write_u8 m 0x5000 7;
  Mem.restore m snap;
  check_int "one region again" 1 (List.length (Mem.regions m));
  check_bool "mapped-after-snapshot region is gone" false (Mem.is_mapped m 0x5000);
  expect_fault Mem.Unmapped (fun () -> Mem.read_u8 m 0x5000);
  check_bool "permission change rolled back" true
    ((Mem.find_region m "a").Mem.perm = Mem.rx);
  expect_fault Mem.Perm_write (fun () -> Mem.write_u8 m 0x1000 1);
  (* And a region unmapped after the snapshot comes back. *)
  let snap2 = Mem.snapshot m in
  Mem.unmap m ~base:0x1000;
  Mem.restore m snap2;
  check_bool "unmapped region restored" true (Mem.is_mapped m 0x1000)

let test_fork_independence () =
  let m = fresh () in
  Mem.map m ~base:0x1000 ~size:0x2000 ~perm:Mem.rw ~name:"d";
  Mem.write_u8 m 0x1000 0xAB;
  let snap = Mem.snapshot m in
  let f1 = Mem.fork snap in
  let f2 = Mem.fork snap in
  check_int "fork sees snapshot bytes" 0xAB (Mem.read_u8 f1 0x1000);
  check_int "fork inherits regions" 1 (List.length (Mem.regions f1));
  Mem.write_u8 f1 0x1000 0xCD;
  Mem.write_u8 m 0x1004 0x77;
  check_int "parent unaffected by fork write" 0xAB (Mem.read_u8 m 0x1000);
  check_int "fork unaffected by parent write" 0 (Mem.read_u8 f1 0x1004);
  check_int "sibling fork unaffected by both" 0xAB (Mem.read_u8 f2 0x1000);
  check_int "sibling fork clean at 0x1004" 0 (Mem.read_u8 f2 0x1004);
  (* The parent's snapshot still restores after forks diverged. *)
  Mem.restore m snap;
  check_int "parent restore exact" 0xAB (Mem.read_u8 m 0x1000);
  check_int "parent restore clears own write" 0 (Mem.read_u8 m 0x1004)

let test_snapshot_icache_coherent () =
  let m, c, calls, decode = icache_fixture () in
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  ignore (Memsim.Icache.lookup c 0x2008 ~decode);
  check_int "two fills" 2 !calls;
  let snap = Mem.snapshot m in
  (* A cached decode survives snapshotting (freeze is not a write). *)
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  check_int "snapshot itself invalidates nothing" 2 !calls;
  Mem.write_u8 m 0x1008 0x90;
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  check_int "post-snapshot store invalidates" 3 !calls;
  Mem.restore m snap;
  (* The restored page carries a fresh generation: the entry filled from
     the in-between bytes must not revalidate. *)
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  check_int "restore forces re-decode of dirtied page" 4 !calls;
  ignore (Memsim.Icache.lookup c 0x1008 ~decode);
  check_int "then caches again" 4 !calls;
  (* The page never written between snapshot and restore stays hot. *)
  ignore (Memsim.Icache.lookup c 0x2008 ~decode);
  check_int "untouched page's entry survives restore" 4 !calls

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"restore rewinds arbitrary write sequences" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 20)
           (pair (int_range 0 0x1FFF) (int_range 0 255)))
        (list_of_size (Gen.int_range 0 20)
           (pair (int_range 0 0x1FFF) (int_range 0 255))))
    (fun (before, after) ->
      let m = fresh () in
      Mem.map m ~base:0x4000 ~size:0x2000 ~perm:Mem.rw ~name:"d";
      List.iter (fun (off, v) -> Mem.write_u8 m (0x4000 + off) v) before;
      let expected = Mem.peek_bytes m 0x4000 0x2000 in
      let snap = Mem.snapshot m in
      List.iter (fun (off, v) -> Mem.write_u8 m (0x4000 + off) v) after;
      Mem.restore m snap;
      Mem.peek_bytes m 0x4000 0x2000 = expected)

let test_shadow_snapshot_restore () =
  let module Shadow = Memsim.Shadow in
  let sh = Shadow.create () in
  Shadow.set sh 0x1000 (Shadow.make ~src:1 ~offset:0);
  Shadow.set sh 0x1001 (Shadow.make ~src:1 ~offset:1);
  Shadow.set sh 0x9F0000 (Shadow.make ~src:2 ~offset:44);
  let snap = Shadow.snapshot sh in
  Shadow.set sh 0x1000 Shadow.clean;
  Shadow.set sh 0x2000 (Shadow.make ~src:3 ~offset:7);
  Shadow.clear_range sh 0x9F0000 ~len:16;
  Shadow.restore sh snap;
  check_int "tainted count back" 3 (Shadow.tainted sh);
  check_int "label back" (Shadow.make ~src:1 ~offset:0) (Shadow.get sh 0x1000);
  check_int "post-snapshot taint dropped" Shadow.clean (Shadow.get sh 0x2000);
  check_int "cleared range re-tainted" (Shadow.make ~src:2 ~offset:44)
    (Shadow.get sh 0x9F0000);
  (* Deep copy: mutating after restore never leaks into the snapshot. *)
  Shadow.clear sh;
  Shadow.restore sh snap;
  check_int "snapshot reusable after clear" 3 (Shadow.tainted sh)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "memsim"
    [
      ( "word",
        [
          Alcotest.test_case "wrap arithmetic" `Quick test_word_wrap;
          qt prop_word_signed_roundtrip;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "map/read/write" `Quick test_map_read_write;
          Alcotest.test_case "little-endian" `Quick test_little_endian;
          Alcotest.test_case "cross-page access" `Quick test_cross_page;
          Alcotest.test_case "unmapped faults" `Quick test_unmapped_fault;
          Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
          Alcotest.test_case "unmap frees pages" `Quick test_unmap;
          Alcotest.test_case "region queries" `Quick test_region_queries;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "write-protect" `Quick test_write_protect;
          Alcotest.test_case "NX fetch faults" `Quick test_nx_fetch;
          Alcotest.test_case "rwx stack fetch ok" `Quick test_executable_stack_fetch;
          Alcotest.test_case "mprotect" `Quick test_mprotect;
          Alcotest.test_case "peek/poke bypass" `Quick test_peek_poke_bypass_perms;
        ] );
      ( "data",
        [
          Alcotest.test_case "bytes and cstring" `Quick test_bytes_and_cstring;
          Alcotest.test_case "hexdump" `Quick test_hexdump;
          qt prop_byte_roundtrip;
          qt prop_u32_roundtrip;
          qt prop_write_bytes_read_bytes;
        ] );
      ( "write atomicity",
        [
          Alcotest.test_case "u32 into unmapped page" `Quick
            test_torn_write_u32_unmapped;
          Alcotest.test_case "u32 into protected page" `Quick
            test_torn_write_u32_protected;
          Alcotest.test_case "write_bytes/poke_bytes spans" `Quick
            test_torn_write_bytes;
        ] );
      ( "errors",
        [ Alcotest.test_case "descriptive invalid_arg" `Quick test_descriptive_errors ] );
      ( "generations",
        [
          Alcotest.test_case "page_gen protocol" `Quick test_page_generations;
          Alcotest.test_case "gen_ref cells" `Quick test_gen_ref_cells;
        ] );
      ( "icache",
        [
          Alcotest.test_case "hit and miss" `Quick test_icache_hit_and_miss;
          Alcotest.test_case "store invalidates" `Quick test_icache_write_invalidates;
          Alcotest.test_case "mprotect/unmap invalidate" `Quick
            test_icache_perm_and_unmap_invalidate;
          Alcotest.test_case "page-straddling entries" `Quick
            test_icache_straddling_entry;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "restore rewinds bytes" `Quick
            test_snapshot_restore_bytes;
          Alcotest.test_case "generation contract" `Quick test_snapshot_gen_contract;
          Alcotest.test_case "region table rollback" `Quick
            test_snapshot_region_table;
          Alcotest.test_case "fork independence" `Quick test_fork_independence;
          Alcotest.test_case "icache coherent across restore" `Quick
            test_snapshot_icache_coherent;
          qt prop_snapshot_roundtrip;
          Alcotest.test_case "shadow snapshot/restore" `Quick
            test_shadow_snapshot_restore;
        ] );
      ( "rng",
        [
          qt prop_rng_deterministic;
          qt prop_rng_bound;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
    ]
