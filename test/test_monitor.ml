(* Flight-recorder tests: quantile estimation at exact bucket edges, the
   alert pending/firing/hysteresis state machine, store downsampling,
   the rules grammar, the JSON parser, the trace dropped-events marker,
   and the monitor's determinism contract — the exported monitor-v1
   document is byte-identical across replays AND across scheduler shard
   counts of the same seeded fleet campaign. *)

module M = Telemetry.Metrics
module Mon = Telemetry.Monitor
module T = Telemetry.Trace
module J = Telemetry.Json
module C = Fleet.Campaign
module Sup = Core.Supervisor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* --- Metrics.quantile ---------------------------------------------------- *)

let test_quantile_edges () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[ 10.0; 20.0; 30.0 ] "q_hist" in
  check_bool "empty histogram is nan" true (Float.is_nan (M.quantile h 0.5));
  for _ = 1 to 5 do
    M.observe h 5.0
  done;
  for _ = 1 to 5 do
    M.observe h 15.0
  done;
  (* rank 0.5 * 10 = 5 lands exactly on the first bucket's cumulative
     edge: interpolation reaches exactly that bucket's upper bound. *)
  check_float "median at a bucket edge" 10.0 (M.quantile h 0.5);
  check_float "q=1.0 is the last occupied bound" 20.0 (M.quantile h 1.0);
  (* rank 2.5 interpolates halfway up the first bucket, from 0. *)
  check_float "lowest bucket interpolates from 0" 5.0 (M.quantile h 0.25);
  check_float "q=0 collapses to the bucket floor" 0.0 (M.quantile h 0.0);
  check_float "q clamps above 1" 20.0 (M.quantile h 1.5);
  check_float "q clamps below 0" 0.0 (M.quantile h (-0.5))

let test_quantile_overflow_and_gaps () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[ 10.0; 20.0; 30.0 ] "q_over" in
  M.observe h 100.0;
  (* observations beyond the last finite bound clamp to it *)
  check_float "overflow clamps to the largest finite bound" 30.0
    (M.quantile h 0.99);
  (* empty bucket prefix: the interpolation edge must advance past it *)
  let g = M.histogram reg ~buckets:[ 10.0; 20.0; 30.0 ] "q_gap" in
  for _ = 1 to 4 do
    M.observe g 15.0
  done;
  check_float "median inside the first occupied bucket" 15.0
    (M.quantile g 0.5)

let test_sample_quantile () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[ 10.0; 20.0 ] "sq" in
  let _g = M.gauge reg "sg" in
  for _ = 1 to 4 do
    M.observe h 15.0
  done;
  List.iter
    (fun (name, _labels, _typ, sample) ->
      match name with
      | "sq" -> check_float "Hist sample quantile" 15.0 (M.sample_quantile sample 0.5)
      | "sg" ->
          check_bool "Value sample quantile is nan" true
            (Float.is_nan (M.sample_quantile sample 0.5))
      | _ -> ())
    (M.samples reg)

(* --- alert state machine ------------------------------------------------- *)

let load_series = Mon.Series { Mon.sel_name = "load"; sel_labels = [] }

let test_alert_for_duration_hysteresis () =
  let reg = M.create () in
  let g = M.gauge reg "load" in
  let mon = Mon.create ~interval_us:1_000_000 reg in
  Mon.alert mon ~name:"hot" ~for_us:2_000_000 ~clear:2.0 ~cmp:Mon.Gt
    ~threshold:5.0 load_series;
  let t = ref 0 in
  let step v =
    t := !t + 1_000_000;
    M.set g v;
    Mon.scrape mon ~now:!t
  in
  let state () = List.assoc "hot" (Mon.alert_states mon) in
  step 1.0;
  check_bool "below threshold: inactive" true (state () = Mon.Inactive);
  step 6.0;
  check_bool "breach starts pending" true (state () = Mon.Pending);
  step 6.5;
  check_bool "sustained 1s of 2s: still pending" true (state () = Mon.Pending);
  step 7.0;
  check_bool "sustained 2s: firing" true (state () = Mon.Firing);
  step 4.0;
  check_bool "below threshold but above clear: hysteresis holds" true
    (state () = Mon.Firing);
  step 1.0;
  check_bool "below clear: resolved" true (state () = Mon.Inactive);
  (* the typed transition log captured each edge with its value *)
  let trs = Mon.transitions mon in
  check_int "three transitions" 3 (List.length trs);
  (match trs with
  | [ a; b; c ] ->
      check_string "pending edge" "pending" (Mon.state_name a.Mon.tr_to);
      check_int "pending at 2s" 2_000_000 a.Mon.tr_ts;
      check_string "firing edge" "firing" (Mon.state_name b.Mon.tr_to);
      check_int "firing at 4s" 4_000_000 b.Mon.tr_ts;
      check_string "resolved edge" "inactive" (Mon.state_name c.Mon.tr_to);
      check_int "resolved at 6s" 6_000_000 c.Mon.tr_ts
  | _ -> Alcotest.fail "expected exactly three transitions");
  (* one incident, fully resolved, peak tracked over the episode *)
  match Mon.incidents mon with
  | [ i ] ->
      check_int "pending ts" 2_000_000 i.Mon.i_pending_us;
      check_int "firing ts" 4_000_000 i.Mon.i_firing_us;
      check_int "resolved ts" 6_000_000 i.Mon.i_resolved_us;
      check_float "peak" 7.0 i.Mon.i_peak
  | l -> Alcotest.fail (Printf.sprintf "expected 1 incident, got %d" (List.length l))

let test_alert_pending_cancel () =
  let reg = M.create () in
  let g = M.gauge reg "load" in
  let mon = Mon.create ~interval_us:1_000_000 reg in
  Mon.alert mon ~name:"hot" ~for_us:3_000_000 ~cmp:Mon.Gt ~threshold:5.0
    load_series;
  let t = ref 0 in
  let step v =
    t := !t + 1_000_000;
    M.set g v;
    Mon.scrape mon ~now:!t
  in
  step 6.0;
  check_bool "pending" true (List.assoc "hot" (Mon.alert_states mon) = Mon.Pending);
  step 1.0;
  check_bool "cancelled back to inactive" true
    (List.assoc "hot" (Mon.alert_states mon) = Mon.Inactive);
  (* a cancelled pending episode never fired: no incident *)
  check_int "no incidents" 0 (List.length (Mon.incidents mon));
  (* immediate-fire alerts skip pending entirely *)
  Mon.alert mon ~name:"instant" ~cmp:Mon.Ge ~threshold:5.0 load_series;
  step 5.0;
  check_bool "for=0 fires immediately" true
    (List.assoc "instant" (Mon.alert_states mon) = Mon.Firing)

(* --- store downsampling and window queries ------------------------------- *)

let test_store_downsampling () =
  let reg = M.create () in
  let g = M.gauge reg "x" in
  let mon = Mon.create ~interval_us:1 ~points:8 reg in
  for i = 1 to 100 do
    M.set g (float_of_int i);
    Mon.scrape mon ~now:i
  done;
  let pts = Mon.points mon "x" in
  check_bool "ring capacity bounded" true (List.length pts <= 8);
  check_bool "several points retained" true (List.length pts >= 4);
  (* nothing is lost to compaction: every scrape is merged somewhere *)
  check_int "merged scrape count" 100
    (List.fold_left (fun a p -> a + p.Mon.p_count) 0 pts);
  check_float "min survives merging" 1.0
    (List.fold_left (fun a p -> min a p.Mon.p_min) infinity pts);
  check_float "max survives merging" 100.0
    (List.fold_left (fun a p -> max a p.Mon.p_max) neg_infinity pts);
  let last = List.nth pts (List.length pts - 1) in
  check_float "last value exact" 100.0 last.Mon.p_last;
  check_int "last ts exact" 100 last.Mon.p_ts;
  (* points are time-ordered *)
  let ts = List.map (fun p -> p.Mon.p_ts) pts in
  check_bool "points time-ordered" true (List.sort compare ts = ts)

let test_window_queries () =
  let reg = M.create () in
  let c = M.counter reg "ops_total" in
  let mon = Mon.create ~interval_us:1_000_000 reg in
  for i = 1 to 10 do
    M.inc ~by:2.0 c;
    Mon.scrape mon ~now:(i * 1_000_000)
  done;
  check_float "delta over trailing 5s" 10.0
    (Mon.delta_over mon "ops_total" ~now:10_000_000 ~window_us:5_000_000);
  check_float "rate is delta per second" 2.0
    (Mon.rate_over mon "ops_total" ~now:10_000_000 ~window_us:5_000_000);
  (match Mon.value_at mon "ops_total" 10_000_000 with
  | Some v -> check_float "value_at now" 20.0 v
  | None -> Alcotest.fail "value_at returned None");
  check_bool "value_at before first scrape" true
    (Mon.value_at mon "ops_total" 0 = None)

(* --- rules grammar ------------------------------------------------------- *)

let test_rules_parse () =
  let mon = Mon.create (M.create ()) in
  (match Mon.add_rules mon C.default_rules with
  | Ok n -> check_int "built-in fleet rule count" 11 n
  | Error e -> Alcotest.fail e);
  check_int "five alerts registered" 5 (List.length (Mon.alert_states mon))

let test_rules_errors_are_atomic () =
  let mon = Mon.create (M.create ()) in
  (* line 2 is broken: nothing from line 1 may be added either *)
  let bad = "alert ok_rule if x > 1\nalert broken if y >\n" in
  (match Mon.add_rules mon bad with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      check_bool "error names the line" true
        (String.length e >= 7 && String.sub e 0 7 = "line 2:"));
  check_int "no rules added on error" 0 (List.length (Mon.alert_states mon));
  (* duration suffixes and label selectors parse *)
  let ok =
    "# comment\n\
     record r1 = rate(net_total{shard=\"0\"}[1500ms]) * 2\n\
     alert a1 if quantile(0.99, parse_steps) >= 100 for 250ms clear 50\n"
  in
  match Mon.add_rules mon ok with
  | Ok n -> check_int "two rules" 2 n
  | Error e -> Alcotest.fail e

(* --- JSON parser --------------------------------------------------------- *)

let test_json_parse () =
  let src = "{\"a\": [1, 2.5, \"x\\n\", true, null], \"b\": {\"c\": -3e2}}" in
  (match J.parse src with
  | Error e -> Alcotest.fail e
  | Ok v -> (
      (match Option.bind (J.member "a" v) J.to_list with
      | Some [ n1; n2; s; J.Bool true; J.Null ] ->
          check_float "int" 1.0 (Option.get (J.to_float n1));
          check_float "float" 2.5 (Option.get (J.to_float n2));
          check_string "escaped string" "x\n" (Option.get (J.to_string s))
      | _ -> Alcotest.fail "array shape");
      match Option.bind (J.member "b" v) (J.member "c") with
      | Some n -> check_float "nested negative exponent" (-300.0) (Option.get (J.to_float n))
      | None -> Alcotest.fail "missing b.c"));
  (* errors pinpoint the byte offset *)
  match J.parse "{\"a\": tru}" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
      check_bool "error mentions offset" true
        (String.length e >= 6 && String.sub e 0 6 = "offset")

(* --- trace dropped-events marker ----------------------------------------- *)

let trace_dropped_expected =
  "{\"traceEvents\": [\n\
  \  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
   \"args\": {\"name\": \"connman-repro\"}},\n\
  \  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, \
   \"args\": {\"name\": \"ring\"}},\n\
  \  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 2, \
   \"args\": {\"name\": \"wire\"}},\n\
  \  {\"name\": \"dropped_events\", \"cat\": \"trace\", \"ph\": \"i\", \"s\": \
   \"t\", \"ts\": 20, \"pid\": 1, \"tid\": 1, \"args\": {\"dropped\": 1, \
   \"emitted\": 3}},\n\
  \  {\"name\": \"e2\", \"cat\": \"net\", \"ph\": \"i\", \"s\": \"t\", \"ts\": \
   20, \"pid\": 1, \"tid\": 2, \"args\": {}},\n\
  \  {\"name\": \"e3\", \"cat\": \"net\", \"ph\": \"i\", \"s\": \"t\", \"ts\": \
   30, \"pid\": 1, \"tid\": 2, \"args\": {}}\n\
   ], \"displayTimeUnit\": \"ms\", \"otherData\": {\"emitted\": 3, \
   \"dropped\": 1}}\n"

let test_trace_dropped_marker () =
  let tr = T.create ~capacity:2 () in
  T.emit tr ~ts:10 ~cat:"net" ~track:"wire" "e1";
  T.emit tr ~ts:20 ~cat:"net" ~track:"wire" "e2";
  T.emit tr ~ts:30 ~cat:"net" ~track:"wire" "e3";
  check_int "one event dropped" 1 (T.dropped tr);
  let json = T.to_chrome_json tr in
  (match J.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("marker JSON invalid: " ^ e));
  check_string "exact marker bytes" trace_dropped_expected json

(* --- determinism: replay and shard-count independence --------------------- *)

(* A draw-free campaign: constant link latency (the default draws a
   uniform latency per datagram from the shard RNG), zero supervisor
   backoff jitter (the only per-device shard-RNG consumer left), no
   drop/corrupt/reorder draws.  Forge draws already run on per-LAN RNGs,
   so the executed-event multiset — and therefore every barrier scrape —
   is identical for any shard count. *)
let det_config shards =
  {
    C.smoke_config with
    C.shards;
    chaos =
      { Netsim.Faults.default with Netsim.Faults.latency = Netsim.Faults.Const 500 };
    sup_policy =
      {
        Sup.default_policy with
        Sup.backoff = { Sup.default_policy.backoff with Sup.jitter = 0.0 };
      };
  }

let run_monitored cfg =
  let mon = Mon.create (M.create ()) in
  (match Mon.add_rules mon C.default_rules with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  ignore (C.run ~monitor:mon cfg);
  (mon, Mon.json mon)

let test_replay_byte_identical () =
  let _, a = run_monitored (det_config 2) in
  let _, b = run_monitored (det_config 2) in
  check_int "same length" (String.length a) (String.length b);
  check_bool "byte-identical across replays" true (String.equal a b);
  match J.parse a with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("monitor json invalid: " ^ e)

let test_shard_count_byte_identical () =
  let _, a = run_monitored (det_config 1) in
  let _, b = run_monitored (det_config 2) in
  let _, c = run_monitored (det_config 4) in
  check_bool "1 shard = 2 shards" true (String.equal a b);
  check_bool "2 shards = 4 shards" true (String.equal b c)

(* --- incident timelines on the real (chaotic) smoke campaign -------------- *)

let test_incident_causal_order () =
  let mon, json = run_monitored C.smoke_config in
  (match J.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("monitor json invalid: " ^ e));
  let incs = Mon.incidents mon in
  check_bool "at least one incident" true (incs <> []);
  check_bool "an alert fired AND resolved" true
    (List.exists (fun i -> i.Mon.i_resolved_us >= 0) incs);
  (* the causal chain the tentpole promises: forged wire bytes open the
     timeline, containment closes it *)
  check_bool "provenance-first, containment-last timeline" true
    (List.exists
       (fun i ->
         match i.Mon.i_timeline with
         | [] -> false
         | first :: _ -> (
             first.Mon.e_kind = "wire_provenance"
             &&
             match List.rev i.Mon.i_timeline with
             | last :: _ ->
                 last.Mon.e_kind = "quarantine" || last.Mon.e_kind = "rollback"
             | [] -> false))
       incs);
  List.iter
    (fun i ->
      let ts = List.map (fun e -> e.Mon.e_ts) i.Mon.i_timeline in
      check_bool "timeline time-ordered" true (List.sort compare ts = ts);
      check_bool "pending after firing never" true
        (i.Mon.i_firing_us >= i.Mon.i_pending_us))
    incs;
  (* journal export order is (ts, actor, ordinal) *)
  let entries = Mon.journal_entries mon in
  check_bool "journal non-empty" true (entries <> []);
  check_bool "journal export order" true
    (let keyed = List.map (fun e -> (e.Mon.e_ts, e.Mon.e_actor)) entries in
     List.sort compare keyed = keyed)

let () =
  Alcotest.run "monitor"
    [
      ( "quantile",
        [
          Alcotest.test_case "bucket edges" `Quick test_quantile_edges;
          Alcotest.test_case "overflow and gaps" `Quick
            test_quantile_overflow_and_gaps;
          Alcotest.test_case "sample quantile" `Quick test_sample_quantile;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "for-duration + hysteresis" `Quick
            test_alert_for_duration_hysteresis;
          Alcotest.test_case "pending cancel / immediate fire" `Quick
            test_alert_pending_cancel;
        ] );
      ( "store",
        [
          Alcotest.test_case "downsampling" `Quick test_store_downsampling;
          Alcotest.test_case "window queries" `Quick test_window_queries;
        ] );
      ( "rules",
        [
          Alcotest.test_case "built-in rules parse" `Quick test_rules_parse;
          Alcotest.test_case "errors are atomic" `Quick
            test_rules_errors_are_atomic;
        ] );
      ( "json",
        [ Alcotest.test_case "parse + accessors" `Quick test_json_parse ] );
      ( "trace",
        [
          Alcotest.test_case "dropped-events marker" `Quick
            test_trace_dropped_marker;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay byte-identical" `Slow
            test_replay_byte_identical;
          Alcotest.test_case "shard-count byte-identical" `Slow
            test_shard_count_byte_identical;
        ] );
      ( "incidents",
        [
          Alcotest.test_case "causal order on the smoke campaign" `Slow
            test_incident_causal_order;
        ] );
    ]
