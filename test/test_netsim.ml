(* Tests for the network simulator: event clock, delivery, Wi-Fi
   association, DHCP, and DNS servers. *)

module W = Netsim.World
module Ip = Netsim.Ip
module Sim = Netsim.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- ip --- *)

let test_ip_roundtrip () =
  check_string "to/of" "192.168.1.10" (Ip.to_string (Ip.of_string "192.168.1.10"));
  check_int "value" 0xC0A8010A (Ip.of_string "192.168.1.10");
  Alcotest.check_raises "bad" (Invalid_argument "Ip.of_string: 1.2.3")
    (fun () -> ignore (Ip.of_string "1.2.3"))

let prop_ip_roundtrip =
  QCheck.Test.make ~name:"ip string round-trip" ~count:300
    QCheck.(int_bound 0xFFFFFFF)
    (fun v ->
      let v = v land 0xFFFFFFFF in
      Ip.of_string (Ip.to_string v) = v)

(* --- sim --- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~delay:30 (fun _ -> order := 3 :: !order);
  Sim.schedule sim ~delay:10 (fun _ -> order := 1 :: !order);
  Sim.schedule sim ~delay:20 (fun _ -> order := 2 :: !order);
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !order)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:7 (fun _ -> order := i :: !order)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:5 (fun sim ->
      incr fired;
      Sim.schedule sim ~delay:5 (fun _ -> incr fired));
  let events = Sim.run sim in
  check_int "events" 2 events;
  check_int "fired" 2 !fired;
  check_int "clock advanced" 10 (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:5 (fun _ -> incr fired);
  Sim.schedule sim ~delay:50 (fun _ -> incr fired);
  ignore (Sim.run ~until:10 sim);
  check_int "only early event" 1 !fired;
  check_int "one pending" 1 (Sim.pending sim)

(* Regression: [Sim.pop] used to leave the popped event record (and its
   action closure) reachable from heap.(size), pinning whatever the
   closure captured for the arena's lifetime.  The slot is now cleared
   with an inert sentinel, so the closure's environment is collectable
   as soon as the event has fired. *)
let test_sim_pop_releases_closures () =
  let sim = Sim.create () in
  let weak = Weak.create 1 in
  let () =
    (* Inner scope so our own reference to the payload dies. *)
    let payload = Bytes.make 4096 'x' in
    Weak.set weak 0 (Some payload);
    Sim.schedule sim ~delay:1 (fun _ -> ignore (Bytes.length payload));
    (* A second event so the heap sees a pop that moves a trailing
       element over the root (the exact path that leaked). *)
    Sim.schedule sim ~delay:2 (fun _ -> ())
  in
  check_int "both fired" 2 (Sim.run sim);
  Gc.full_major ();
  check_bool "payload collected after run" true (Weak.get weak 0 = None)

let prop_sim_many_events_ordered =
  QCheck.Test.make ~name:"heap preserves timestamp order" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_bound 10_000))
    (fun delays ->
      let sim = Sim.create () in
      let times = ref [] in
      List.iter
        (fun d -> Sim.schedule sim ~delay:d (fun sim -> times := Sim.now sim :: !times))
        delays;
      ignore (Sim.run sim);
      let seen = List.rev !times in
      List.sort compare seen = seen)

(* --- delivery --- *)

let two_hosts () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let a = W.add_host w ~name:"a" in
  let b = W.add_host w ~name:"b" in
  W.set_host_ip a (Some (Ip.of_string "10.0.0.1"));
  W.set_host_ip b (Some (Ip.of_string "10.0.0.2"));
  W.attach a lan;
  W.attach b lan;
  (w, lan, a, b)

let test_unicast_delivery () =
  let w, _, a, b = two_hosts () in
  let got = ref None in
  W.on_udp b ~port:9 (fun _ d -> got := Some d.W.payload);
  W.send w ~from:a ~sport:1234 ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "hello";
  ignore (W.run w);
  Alcotest.(check (option string)) "delivered" (Some "hello") !got;
  check_int "stat" 1 (W.stats w).W.delivered

let test_unroutable_dropped () =
  let w, _, a, _ = two_hosts () in
  W.send w ~from:a ~dst:(Ip.of_string "10.9.9.9") ~dport:9 "lost";
  ignore (W.run w);
  check_int "dropped" 1 (W.stats w).W.dropped

let test_no_handler_dropped () =
  let w, _, a, _ = two_hosts () in
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:4242 "nobody";
  ignore (W.run w);
  check_int "dropped" 1 (W.stats w).W.dropped

let test_broadcast_reaches_lan_only () =
  let w, _, a, b = two_hosts () in
  let lan2 = W.add_lan w ~name:"other" in
  let c = W.add_host w ~name:"c" in
  W.set_host_ip c (Some (Ip.of_string "10.0.1.1"));
  W.attach c lan2;
  let hits = ref [] in
  let listen h = W.on_udp h ~port:68 (fun ctx _ -> hits := W.host_name ctx.W.self :: !hits) in
  listen b;
  listen c;
  W.send w ~from:a ~dst:Ip.broadcast ~dport:68 "announce";
  ignore (W.run w);
  Alcotest.(check (list string)) "only same-lan" [ "b" ] !hits

let test_uplink_routing () =
  let w = W.create () in
  let internet = W.add_lan w ~name:"internet" in
  let home = W.add_lan w ~name:"home" in
  W.set_uplink home (Some internet);
  let server = W.add_host w ~name:"server" in
  W.set_host_ip server (Some (Ip.of_string "8.8.8.8"));
  W.attach server internet;
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "192.168.1.5"));
  W.attach client home;
  let got = ref false in
  W.on_udp server ~port:53 (fun _ _ -> got := true);
  W.send w ~from:client ~dst:(Ip.of_string "8.8.8.8") ~dport:53 "q";
  ignore (W.run w);
  check_bool "routed via uplink" true !got;
  (* Replies route back down into the edge LAN (NAT return path). *)
  let back = ref false in
  W.on_udp client ~port:53 (fun _ _ -> back := true);
  W.send w ~from:server ~dst:(Ip.of_string "192.168.1.5") ~dport:53 "r";
  ignore (W.run w);
  check_bool "return path routed" true !back;
  (* Disconnected LANs remain unreachable. *)
  let island = W.add_lan w ~name:"island" in
  let hermit = W.add_host w ~name:"hermit" in
  W.set_host_ip hermit (Some (Ip.of_string "10.99.0.1"));
  W.attach hermit island;
  let reached = ref false in
  W.on_udp hermit ~port:1 (fun _ _ -> reached := true);
  W.send w ~from:client ~dst:(Ip.of_string "10.99.0.1") ~dport:1 "x";
  ignore (W.run w);
  check_bool "island unreachable" false !reached

let test_attach_switches_lan () =
  let w, lan1, a, _ = two_hosts () in
  let lan2 = W.add_lan w ~name:"lan2" in
  W.attach a lan2;
  check_int "left lan1" 1 (List.length (W.hosts_of lan1));
  check_bool "joined lan2" true
    (List.exists (fun h -> W.host_name h = "a") (W.hosts_of lan2))

(* --- faults --- *)

module F = Netsim.Faults

let drop_all = { F.default with F.drop = 1.0 }

(* Regression: the seed implementation rolled the loss probability for
   unicast only — broadcast datagrams (DHCP discovery and friends) were
   immune to [set_loss]. *)
let test_broadcast_respects_loss () =
  let w, _, a, b = two_hosts () in
  W.set_loss w 1.0;
  let hits = ref 0 in
  W.on_udp b ~port:68 (fun _ _ -> incr hits);
  W.send w ~from:a ~dst:Ip.broadcast ~dport:68 "announce";
  ignore (W.run w);
  check_int "broadcast lost" 0 !hits;
  check_int "counted as fault drop" 1 (W.stats w).W.dropped_fault;
  check_int "total dropped" 1 (W.stats w).W.dropped

let test_link_policy_overrides () =
  let w, lan, a, b = two_hosts () in
  (* LAN-wide loss, but the a–b link has an explicit clean policy: the
     most specific policy wins. *)
  W.set_lan_policy w lan drop_all;
  W.set_link_policy w a b F.default;
  let hits = ref 0 in
  W.on_udp b ~port:9 (fun _ _ -> incr hits);
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "x";
  ignore (W.run w);
  check_int "link policy wins over lan" 1 !hits;
  (* Clearing the link policy exposes the lossy LAN policy again. *)
  W.clear_link_policy w a b;
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "y";
  ignore (W.run w);
  check_int "lan policy applies after clear" 1 !hits;
  check_int "fault drop counted" 1 (W.stats w).W.dropped_fault;
  W.clear_lan_policy w lan;
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "z";
  ignore (W.run w);
  check_int "default policy after clearing lan" 2 !hits

let test_corruption_flips_bytes () =
  let w, _, a, b = two_hosts () in
  W.set_link_policy w a b { F.default with F.corrupt = 1.0 };
  let got = ref None in
  W.on_udp b ~port:9 (fun _ d -> got := Some d.W.payload);
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "payload";
  ignore (W.run w);
  (match !got with
  | None -> Alcotest.fail "corrupted datagram still delivers"
  | Some p ->
      check_int "same length" 7 (String.length p);
      check_bool "at least one byte differs" true (p <> "payload"));
  check_int "corruption counted" 1 (W.stats w).W.corrupted

let test_duplication_delivers_twice () =
  let w, _, a, b = two_hosts () in
  W.set_link_policy w a b { F.default with F.duplicate = 1.0 };
  let hits = ref 0 in
  W.on_udp b ~port:9 (fun _ _ -> incr hits);
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "x";
  ignore (W.run w);
  check_int "two copies" 2 !hits;
  check_int "one duplication event" 1 (W.stats w).W.duplicated;
  check_int "both count as delivered" 2 (W.stats w).W.delivered

let test_flap_window_drops_then_recovers () =
  let w, _, a, b = two_hosts () in
  W.set_link_policy w a b
    { F.default with F.flaps = [ (0, 10_000_000) ] };
  let hits = ref 0 in
  W.on_udp b ~port:9 (fun _ _ -> incr hits);
  W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "during";
  Sim.schedule (W.sim w) ~delay:20_000_000 (fun _ ->
      W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9 "after");
  ignore (W.run w);
  check_int "only post-flap datagram lands" 1 !hits;
  check_int "flap drop counted" 1 (W.stats w).W.dropped_link

let test_partition_blocks_then_heals () =
  let w = W.create () in
  let internet = W.add_lan w ~name:"internet" in
  let home = W.add_lan w ~name:"home" in
  W.set_uplink home (Some internet);
  let server = W.add_host w ~name:"server" in
  W.set_host_ip server (Some (Ip.of_string "8.8.8.8"));
  W.attach server internet;
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "192.168.1.5"));
  W.attach client home;
  let hits = ref 0 in
  W.on_udp server ~port:53 (fun _ _ -> incr hits);
  W.partition w home internet;
  check_bool "partitioned" true (W.partitioned w home internet);
  W.send w ~from:client ~dst:(Ip.of_string "8.8.8.8") ~dport:53 "q";
  ignore (W.run w);
  check_int "no route across partition" 0 !hits;
  check_int "counted as no-route" 1 (W.stats w).W.no_route;
  W.heal w home internet;
  check_bool "healed" false (W.partitioned w home internet);
  W.send w ~from:client ~dst:(Ip.of_string "8.8.8.8") ~dport:53 "q2";
  ignore (W.run w);
  check_int "route restored" 1 !hits

(* The route search over a deeper multi-LAN topology: a chain of uplinks
   with side branches, exercising the queue-based BFS (the seed
   implementation's list-append search was quadratic and is gone). *)
let test_multi_lan_routing () =
  let w = W.create () in
  let lans =
    Array.init 8 (fun i -> W.add_lan w ~name:(Printf.sprintf "lan%d" i))
  in
  for i = 0 to 6 do
    W.set_uplink lans.(i) (Some lans.(i + 1))
  done;
  (* Side branches that dead-end, so the search must skip past them. *)
  for i = 0 to 3 do
    let stub = W.add_lan w ~name:(Printf.sprintf "stub%d" i) in
    W.set_uplink stub (Some lans.(i))
  done;
  let src = W.add_host w ~name:"src" in
  W.set_host_ip src (Some (Ip.of_string "10.0.0.1"));
  W.attach src lans.(0);
  let dst = W.add_host w ~name:"dst" in
  W.set_host_ip dst (Some (Ip.of_string "10.0.7.1"));
  W.attach dst lans.(7);
  let hits = ref 0 in
  W.on_udp dst ~port:9 (fun _ _ -> incr hits);
  W.send w ~from:src ~dst:(Ip.of_string "10.0.7.1") ~dport:9 "deep";
  ignore (W.run w);
  check_int "routed across 8 lans" 1 !hits;
  (* Severing a middle edge cuts the only path. *)
  W.partition w lans.(3) lans.(4);
  W.send w ~from:src ~dst:(Ip.of_string "10.0.7.1") ~dport:9 "cut";
  ignore (W.run w);
  check_int "partition mid-chain blocks" 1 !hits

let test_policy_validation () =
  Alcotest.check_raises "drop out of range"
    (Invalid_argument "Faults.validate: drop must be in [0, 1]")
    (fun () -> ignore (F.validate { F.default with F.drop = 1.5 }));
  Alcotest.check_raises "bad uniform latency"
    (Invalid_argument "Faults.validate: latency range must satisfy 0 <= lo < hi")
    (fun () ->
      ignore (F.validate { F.default with F.latency = F.Uniform { lo = 9; hi = 9 } }));
  check_bool "set_loss validates" true
    (try
       W.set_loss (W.create ()) 2.0;
       false
     with Invalid_argument _ -> true)

(* --- wifi --- *)

let test_wifi_prefers_strongest () =
  let w = W.create () in
  let lan1 = W.add_lan w ~name:"legit" in
  let lan2 = W.add_lan w ~name:"rogue" in
  let weak = Netsim.Wifi.ap ~name:"weak" ~ssid:"Net" ~signal_dbm:(-70) lan1 in
  let strong = Netsim.Wifi.ap ~name:"strong" ~ssid:"Net" ~signal_dbm:(-30) lan2 in
  let other = Netsim.Wifi.ap ~name:"other" ~ssid:"Else" ~signal_dbm:(-10) lan1 in
  let sta = W.add_host w ~name:"sta" in
  (match Netsim.Wifi.associate sta [ weak; strong; other ] ~ssid:"Net" with
  | Some ap -> check_string "strongest matching ssid" "strong" ap.Netsim.Wifi.ap_name
  | None -> Alcotest.fail "no ap");
  check_bool "joined rogue lan" true
    (match W.lan_of sta with Some l -> W.lan_name l = "rogue" | None -> false);
  check_bool "lease cleared" true (W.host_ip sta = None)

let test_wifi_no_match () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let ap = Netsim.Wifi.ap ~name:"ap" ~ssid:"A" ~signal_dbm:(-50) lan in
  let sta = W.add_host w ~name:"sta" in
  check_bool "none" true (Netsim.Wifi.associate sta [ ap ] ~ssid:"B" = None)

(* --- dhcp --- *)

let test_dhcp_configures_client () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"dhcpd" in
  W.set_host_ip server (Some (Ip.of_string "192.168.1.1"));
  W.attach server lan;
  Netsim.Dhcp.serve w server ~first_ip:(Ip.of_string "192.168.1.100")
    ~dns:(Ip.of_string "9.9.9.9");
  let client = W.add_host w ~name:"client" in
  W.attach client lan;
  let configured = ref false in
  Netsim.Dhcp.solicit w client ~on_configured:(fun _ -> configured := true) ();
  ignore (W.run w);
  check_bool "callback" true !configured;
  Alcotest.(check (option string)) "leased ip" (Some "192.168.1.100")
    (Option.map Ip.to_string (W.host_ip client));
  Alcotest.(check (option string)) "dns option" (Some "9.9.9.9")
    (Option.map Ip.to_string (W.host_dns client))

let test_dhcp_stable_lease_and_sequential () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"dhcpd" in
  W.set_host_ip server (Some (Ip.of_string "10.0.0.1"));
  W.attach server lan;
  Netsim.Dhcp.serve w server ~first_ip:(Ip.of_string "10.0.0.100")
    ~dns:(Ip.of_string "10.0.0.1");
  let c1 = W.add_host w ~name:"c1" in
  let c2 = W.add_host w ~name:"c2" in
  W.attach c1 lan;
  W.attach c2 lan;
  Netsim.Dhcp.solicit w c1 ();
  Netsim.Dhcp.solicit w c2 ();
  ignore (W.run w);
  let ip h = Option.map Ip.to_string (W.host_ip h) in
  Alcotest.(check (option string)) "c1" (Some "10.0.0.100") (ip c1);
  Alcotest.(check (option string)) "c2" (Some "10.0.0.101") (ip c2);
  (* Re-solicit: same lease. *)
  Netsim.Dhcp.solicit w c1 ();
  ignore (W.run w);
  Alcotest.(check (option string)) "stable" (Some "10.0.0.100") (ip c1)

(* --- dns servers --- *)

let test_resolver_answers_zone () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"dns" in
  W.set_host_ip server (Some (Ip.of_string "8.8.8.8"));
  W.attach server lan;
  Netsim.Dns_server.resolver w server
    ~zone:[ ("example.com", Ip.of_string "93.184.216.34") ];
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "10.0.0.5"));
  W.attach client lan;
  let answer = ref None in
  W.on_udp client ~port:5353 (fun _ d ->
      match Dns.Packet.decode d.W.payload with
      | Ok m -> answer := Some m
      | Error _ -> ());
  let query = Dns.Packet.query ~id:7 (Dns.Name.of_string "example.com") Dns.Packet.A in
  W.send w ~from:client ~sport:5353 ~dst:(Ip.of_string "8.8.8.8") ~dport:53
    (Dns.Packet.encode query);
  ignore (W.run w);
  match !answer with
  | Some m ->
      check_int "id echo" 7 m.Dns.Packet.header.Dns.Packet.id;
      check_int "one answer" 1 (List.length m.Dns.Packet.answers);
      check_bool "right ip" true
        (Dns.Packet.ipv4_of_rdata (List.hd m.Dns.Packet.answers).Dns.Packet.rdata
        = Some (Ip.of_string "93.184.216.34"))
  | None -> Alcotest.fail "no answer"

let test_resolver_empty_for_unknown () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"dns" in
  W.set_host_ip server (Some (Ip.of_string "8.8.8.8"));
  W.attach server lan;
  Netsim.Dns_server.resolver w server ~zone:[];
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "10.0.0.5"));
  W.attach client lan;
  let answers = ref (-1) in
  W.on_udp client ~port:5353 (fun _ d ->
      match Dns.Packet.decode d.W.payload with
      | Ok m -> answers := List.length m.Dns.Packet.answers
      | Error _ -> ());
  let query = Dns.Packet.query ~id:8 (Dns.Name.of_string "nope.example") Dns.Packet.A in
  W.send w ~from:client ~sport:5353 ~dst:(Ip.of_string "8.8.8.8") ~dport:53
    (Dns.Packet.encode query);
  ignore (W.run w);
  check_int "empty answer section" 0 !answers

let test_resolver_chases_cnames () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"dns" in
  W.set_host_ip server (Some (Ip.of_string "8.8.8.8"));
  W.attach server lan;
  Netsim.Dns_server.resolver w server
    ~cnames:[ ("www.example.com", "cdn.example.net"); ("cdn.example.net", "edge.example.net") ]
    ~zone:[ ("edge.example.net", Ip.of_string "198.51.100.7") ];
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "10.0.0.5"));
  W.attach client lan;
  let answer = ref None in
  W.on_udp client ~port:5353 (fun _ d ->
      match Dns.Packet.decode d.W.payload with
      | Ok m -> answer := Some m
      | Error _ -> ());
  let query =
    Dns.Packet.query ~id:9 (Dns.Name.of_string "www.example.com") Dns.Packet.A
  in
  W.send w ~from:client ~sport:5353 ~dst:(Ip.of_string "8.8.8.8") ~dport:53
    (Dns.Packet.encode query);
  ignore (W.run w);
  match !answer with
  | Some m ->
      check_int "chain of 3 records" 3 (List.length m.Dns.Packet.answers);
      let kinds = List.map (fun (r : Dns.Packet.rr) -> r.Dns.Packet.rtype) m.Dns.Packet.answers in
      check_bool "two cnames then an A" true
        (kinds = [ Dns.Packet.CNAME; Dns.Packet.CNAME; Dns.Packet.A ]);
      (match List.nth m.Dns.Packet.answers 0 with
      | { Dns.Packet.rdata; _ } ->
          check_bool "cname rdata decodes" true
            (Dns.Packet.cname_of_rdata rdata
            = Some (Dns.Name.of_string "cdn.example.net")));
      check_bool "terminal A" true
        (Dns.Packet.ipv4_of_rdata (List.nth m.Dns.Packet.answers 2).Dns.Packet.rdata
        = Some (Ip.of_string "198.51.100.7"))
  | None -> Alcotest.fail "no answer"

let test_resolver_uses_cache () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"dns" in
  W.set_host_ip server (Some (Ip.of_string "8.8.8.8"));
  W.attach server lan;
  let cache = Dns.Cache.create ~capacity:64 () in
  Netsim.Dns_server.resolver ~cache w server
    ~zone:[ ("example.com", Ip.of_string "93.184.216.34") ];
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "10.0.0.5"));
  W.attach client lan;
  let answers = ref [] in
  W.on_udp client ~port:5353 (fun _ d ->
      match Dns.Packet.decode d.W.payload with
      | Ok m -> answers := m :: !answers
      | Error _ -> ());
  let ask id name =
    let query = Dns.Packet.query ~id (Dns.Name.of_string name) Dns.Packet.A in
    W.send w ~from:client ~sport:5353 ~dst:(Ip.of_string "8.8.8.8") ~dport:53
      (Dns.Packet.encode query);
    (* Run to quiescence between queries so the second lookup is
       guaranteed to observe the first one's cache fill. *)
    ignore (W.run w)
  in
  ask 1 "example.com";
  ask 2 "example.com";
  ask 3 "ghost.example";
  ask 4 "ghost.example";
  check_int "four answers" 4 (List.length !answers);
  List.iter
    (fun (m : Dns.Packet.t) ->
      let n = List.length m.Dns.Packet.answers in
      match m.Dns.Packet.header.Dns.Packet.id with
      | 1 | 2 ->
          check_int "known name answered" 1 n;
          check_bool "cached answer keeps the right ip" true
            (Dns.Packet.ipv4_of_rdata
               (List.hd m.Dns.Packet.answers).Dns.Packet.rdata
            = Some (Ip.of_string "93.184.216.34"))
      | _ -> check_int "unknown name empty" 0 n)
    !answers;
  let s = Dns.Cache.stats cache in
  check_int "second query served from cache" 1 s.Dns.Cache.hits;
  check_int "repeat unknown is a negative hit" 1 s.Dns.Cache.negative_hits;
  check_int "one positive + one negative fill" 2 s.Dns.Cache.insertions

let test_malicious_forges () =
  let w = W.create () in
  let lan = W.add_lan w ~name:"lan" in
  let server = W.add_host w ~name:"evil" in
  W.set_host_ip server (Some (Ip.of_string "6.6.6.6"));
  W.attach server lan;
  Netsim.Dns_server.malicious w server ~forge:(fun ~query ~raw:_ ->
      Some
        (Dns.Craft.hostile_response ~query
           ~raw_name:(Result.get_ok (Dns.Craft.plan_labels (Dns.Craft.spec_any 16)))
           ()));
  let client = W.add_host w ~name:"client" in
  W.set_host_ip client (Some (Ip.of_string "10.0.0.5"));
  W.attach client lan;
  let got = ref None in
  W.on_udp client ~port:5353 (fun _ d -> got := Some d.W.payload);
  let query = Dns.Packet.query ~id:0x42 (Dns.Name.of_string "x.y") Dns.Packet.A in
  W.send w ~from:client ~sport:5353 ~dst:(Ip.of_string "6.6.6.6") ~dport:53
    (Dns.Packet.encode query);
  ignore (W.run w);
  match !got with
  | Some wire ->
      check_int "id echoed by forgery" 0x42
        ((Char.code wire.[0] lsl 8) lor Char.code wire.[1])
  | None -> Alcotest.fail "no forged response"

(* --- shards + clock regressions --- *)

(* Regression: [Sim.run ?until] used to leave the clock wherever the
   last event fired when the heap drained before the horizon, so a
   subsequent [schedule ~delay] was anchored too early. *)
let test_sim_until_advances_clock () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:10 (fun _ -> ());
  ignore (Sim.run ~until:1000 sim);
  check_int "clock at horizon after early drain" 1000 (Sim.now sim);
  ignore (Sim.run ~until:2500 sim);
  check_int "empty heap still advances" 2500 (Sim.now sim);
  let fired_at = ref 0 in
  Sim.schedule sim ~delay:7 (fun s -> fired_at := Sim.now s);
  ignore (Sim.run sim);
  check_int "delay anchored at the horizon" 2507 !fired_at

let shard_world () =
  let w = W.create ~seed:11 ~shards:2 ~batch:50 () in
  let lan_a = W.add_lan w ~name:"lan-a" in
  let lan_b = W.add_lan w ~name:"lan-b" in
  W.set_uplink lan_b (Some lan_a);
  W.set_lan_shard w lan_b 1;
  let a = W.add_host w ~name:"a" in
  let b = W.add_host w ~name:"b" in
  W.set_host_ip a (Some (Ip.of_string "10.0.0.1"));
  W.set_host_ip b (Some (Ip.of_string "10.1.0.1"));
  W.attach a lan_a;
  W.attach b lan_b;
  (w, lan_a, lan_b, a, b)

let test_shard_cross_delivery () =
  let w, _, lan_b, a, b = shard_world () in
  check_int "shard count" 2 (W.shard_count w);
  check_int "lan pinned" 1 (W.lan_shard lan_b);
  let got = ref [] in
  W.on_udp b ~port:9 (fun ctx d ->
      got := d.W.payload :: !got;
      W.send ctx.W.world ~from:ctx.W.self ~sport:9 ~dst:d.W.src
        ~dport:d.W.sport "pong");
  let echoed = ref [] in
  W.on_udp a ~port:7 (fun _ d -> echoed := d.W.payload :: !echoed);
  W.send w ~from:a ~sport:7 ~dst:(Ip.of_string "10.1.0.1") ~dport:9 "ping";
  ignore (W.run w);
  Alcotest.(check (list string)) "request crossed shards" [ "ping" ] !got;
  Alcotest.(check (list string)) "reply crossed back" [ "pong" ] !echoed;
  check_int "merged delivered" 2 (W.stats w).W.delivered;
  check_int "per-shard sum = merged" 2
    ((W.shard_stats w 0).W.delivered + (W.shard_stats w 1).W.delivered)

let test_shard_merged_stats_and_validation () =
  let w, _, _, a, b = shard_world () in
  (* One unroutable send per shard: each charges its own shard. *)
  W.send w ~from:a ~dst:(Ip.of_string "203.0.113.9") ~dport:9 "x";
  W.send w ~from:b ~dst:(Ip.of_string "203.0.113.9") ~dport:9 "x";
  ignore (W.run w);
  check_int "shard 0 no_route" 1 (W.shard_stats w 0).W.no_route;
  check_int "shard 1 no_route" 1 (W.shard_stats w 1).W.no_route;
  check_int "merged no_route" 2 (W.stats w).W.no_route;
  Alcotest.check_raises "bad shard index"
    (Invalid_argument "World.shard_sim: no such shard") (fun () ->
      ignore (W.shard_sim w 2));
  Alcotest.check_raises "bad shard count"
    (Invalid_argument "World.create: shards must be >= 1") (fun () ->
      ignore (W.create ~shards:0 ()))

(* Seed replay through the sharded world structure: a lossy scenario
   re-run from the same seed delivers exactly the same subset. *)
let test_shard_seed_replay () =
  let outcome shards =
    let w = W.create ~seed:21 ~shards () in
    let lan = W.add_lan w ~name:"lan" in
    let a = W.add_host w ~name:"a" in
    let b = W.add_host w ~name:"b" in
    W.set_host_ip a (Some (Ip.of_string "10.0.0.1"));
    W.set_host_ip b (Some (Ip.of_string "10.0.0.2"));
    W.attach a lan;
    W.attach b lan;
    W.set_loss w 0.5;
    let got = ref [] in
    W.on_udp b ~port:9 (fun _ d -> got := d.W.payload :: !got);
    for i = 1 to 40 do
      W.send w ~from:a ~dst:(Ip.of_string "10.0.0.2") ~dport:9
        (string_of_int i)
    done;
    ignore (W.run w);
    (List.rev !got, (W.stats w).W.delivered, (W.stats w).W.dropped)
  in
  let r1 = outcome 1 and r2 = outcome 1 in
  Alcotest.(check bool) "same seed, same fate" true (r1 = r2);
  let delivered, dropped = (match r1 with _, d, p -> (d, p)) in
  check_int "everything accounted" 40 (delivered + dropped);
  Alcotest.(check bool) "loss actually fired" true (dropped > 0);
  (* The single-LAN scenario runs entirely on shard 0, so extra idle
     shards must not disturb the draw sequence. *)
  let r4 = outcome 4 in
  Alcotest.(check bool) "idle shards don't shift the rng" true (r1 = r4)

(* Fault injection × sharding: with drop, corruption, and reordering all
   active, the delivery trace (receiver shard-clock timestamp, dst,
   payload bytes — corrupted ones included) and the per-reason stats
   must be bit-identical across shard counts (traffic LANs default to
   shard 0; idle shards may not consume randomness), and a layout that
   actually spreads LANs over shards must replay against itself. *)
let chaotic_policy =
  {
    F.default with
    F.drop = 0.15;
    corrupt = 0.2;
    reorder = 0.3;
    reorder_window_us = 2_000;
  }

let fault_shard_outcome ?(pin = false) shards =
  let w = W.create ~seed:33 ~shards ~batch:100 () in
  W.set_default_policy w chaotic_policy;
  let trace = ref [] in
  let mk_lane i =
    let lan =
      W.add_lan w ~name:(Printf.sprintf "lan-%d" i)
        ~shard:(if pin then i mod shards else 0)
    in
    let tx = W.add_host w ~name:(Printf.sprintf "tx-%d" i) in
    let rx = W.add_host w ~name:(Printf.sprintf "rx-%d" i) in
    let dst = Ip.of_string (Printf.sprintf "10.%d.0.2" i) in
    W.set_host_ip tx (Some (Ip.of_string (Printf.sprintf "10.%d.0.1" i)));
    W.set_host_ip rx (Some dst);
    W.attach tx lan;
    W.attach rx lan;
    W.on_udp rx ~port:9 (fun ctx d ->
        let at =
          Sim.now
            (W.shard_sim ctx.W.world (W.host_shard ctx.W.world ctx.W.self))
        in
        trace := (at, d.W.dst, d.W.payload) :: !trace);
    (tx, dst)
  in
  let lanes = List.init 2 mk_lane in
  List.iteri
    (fun i (tx, dst) ->
      for k = 1 to 60 do
        W.send w ~from:tx ~sport:7 ~dst ~dport:9 (Printf.sprintf "m-%d-%02d" i k)
      done)
    lanes;
  ignore (W.run w);
  let s = W.stats w in
  ( List.rev !trace,
    ( s.W.delivered,
      s.W.dropped,
      s.W.dropped_fault,
      s.W.corrupted,
      s.W.reordered,
      s.W.duplicated ),
    if shards > 1 then (W.shard_stats w 1).W.delivered else 0 )

let test_shard_fault_replay () =
  let r1 = fault_shard_outcome 1 in
  let r2 = fault_shard_outcome 2 in
  let r4 = fault_shard_outcome 4 in
  check_bool "bit-identical across shard counts" true (r1 = r2 && r1 = r4);
  let _, (delivered, dropped, dropped_fault, corrupted, reordered, _), _ = r1 in
  check_int "everything accounted" 120 (delivered + dropped);
  check_bool "drops fired" true (dropped_fault > 0);
  check_bool "corruption fired" true (corrupted > 0);
  check_bool "reordering fired" true (reordered > 0);
  let p1 = fault_shard_outcome ~pin:true 2 in
  let p2 = fault_shard_outcome ~pin:true 2 in
  check_bool "pinned layout replays against itself" true (p1 = p2);
  let _, _, shard1_delivered = p1 in
  check_bool "pinned layout really ran traffic on shard 1" true
    (shard1_delivered > 0)

(* Per-shard metrics exposition: sharded worlds expose one
   ["shard"]-labelled series per shard after each unlabelled rollup, in
   shard-index order, and the rollup equals the sum of the shards at
   every scrape. *)
let test_per_shard_metrics () =
  let w, _, _, a, b = shard_world () in
  (* Request/response traffic so both shards deliver datagrams. *)
  W.on_udp b ~port:9 (fun ctx d ->
      W.send ctx.W.world ~from:ctx.W.self ~sport:9 ~dst:d.W.src ~dport:d.W.sport
        "pong");
  W.on_udp a ~port:7 (fun _ _ -> ());
  for _ = 1 to 5 do
    W.send w ~from:a ~sport:7 ~dst:(Ip.of_string "10.1.0.1") ~dport:9 "ping"
  done;
  W.send w ~from:a ~dst:(Ip.of_string "203.0.113.9") ~dport:9 "x";
  ignore (W.run w);
  let reg = Telemetry.Metrics.create () in
  W.register_metrics w reg;
  let text = Telemetry.Metrics.expose reg in
  let value series =
    let n = String.length series in
    let line =
      List.find_opt
        (fun l ->
          String.length l > n + 1
          && String.equal (String.sub l 0 n) series
          && l.[n] = ' ')
        (String.split_on_char '\n' text)
    in
    match line with
    | Some l -> float_of_string (String.sub l (n + 1) (String.length l - n - 1))
    | None -> Alcotest.failf "series %s not exposed:\n%s" series text
  in
  List.iter
    (fun name ->
      let rollup = value name in
      let s0 = value (name ^ "{shard=\"0\"}") in
      let s1 = value (name ^ "{shard=\"1\"}") in
      Alcotest.(check (float 0.0)) (name ^ " rollup = sum of shards") rollup
        (s0 +. s1))
    [ "netsim_delivered_total"; "netsim_dropped_total"; "netsim_no_route_total" ];
  check_bool "traffic crossed both shards" true
    (value "netsim_delivered_total{shard=\"0\"}" > 0.
    && value "netsim_delivered_total{shard=\"1\"}" > 0.);
  (* Label order is stable: shard 0 precedes shard 1 for every name, and
     a second scrape renders byte-identically (live probes aside, the
     world is idle now). *)
  let find sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length text then
        Alcotest.failf "no %s in exposition" sub
      else if String.equal (String.sub text i n) sub then i
      else go (i + 1)
    in
    go 0
  in
  check_bool "shard series sorted by index" true
    (find "netsim_delivered_total{shard=\"0\"}"
    < find "netsim_delivered_total{shard=\"1\"}");
  check_string "scrape is reproducible" text (Telemetry.Metrics.expose reg)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "netsim"
    [
      ( "ip",
        [ Alcotest.test_case "round-trip" `Quick test_ip_roundtrip; qt prop_ip_roundtrip ]
      );
      ( "sim",
        [
          Alcotest.test_case "timestamp ordering" `Quick test_sim_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_schedule;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "pop releases closures" `Quick
            test_sim_pop_releases_closures;
          Alcotest.test_case "until advances clock past drained heap" `Quick
            test_sim_until_advances_clock;
          qt prop_sim_many_events_ordered;
        ] );
      ( "shards",
        [
          Alcotest.test_case "cross-shard delivery" `Quick
            test_shard_cross_delivery;
          Alcotest.test_case "merged stats + validation" `Quick
            test_shard_merged_stats_and_validation;
          Alcotest.test_case "seed replay" `Quick test_shard_seed_replay;
          Alcotest.test_case "fault injection replays across shard counts"
            `Quick test_shard_fault_replay;
          Alcotest.test_case "per-shard metrics exposition" `Quick
            test_per_shard_metrics;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "unicast" `Quick test_unicast_delivery;
          Alcotest.test_case "unroutable dropped" `Quick test_unroutable_dropped;
          Alcotest.test_case "no handler dropped" `Quick test_no_handler_dropped;
          Alcotest.test_case "broadcast is LAN-local" `Quick
            test_broadcast_reaches_lan_only;
          Alcotest.test_case "uplink routing" `Quick test_uplink_routing;
          Alcotest.test_case "attach switches lan" `Quick test_attach_switches_lan;
        ] );
      ( "faults",
        [
          Alcotest.test_case "broadcast respects loss" `Quick
            test_broadcast_respects_loss;
          Alcotest.test_case "link policy overrides" `Quick
            test_link_policy_overrides;
          Alcotest.test_case "corruption flips bytes" `Quick
            test_corruption_flips_bytes;
          Alcotest.test_case "duplication delivers twice" `Quick
            test_duplication_delivers_twice;
          Alcotest.test_case "flap window" `Quick
            test_flap_window_drops_then_recovers;
          Alcotest.test_case "partition blocks then heals" `Quick
            test_partition_blocks_then_heals;
          Alcotest.test_case "multi-lan routing" `Quick test_multi_lan_routing;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
        ] );
      ( "wifi",
        [
          Alcotest.test_case "prefers strongest signal" `Quick
            test_wifi_prefers_strongest;
          Alcotest.test_case "no ssid match" `Quick test_wifi_no_match;
        ] );
      ( "dhcp",
        [
          Alcotest.test_case "configures client" `Quick test_dhcp_configures_client;
          Alcotest.test_case "stable + sequential leases" `Quick
            test_dhcp_stable_lease_and_sequential;
        ] );
      ( "dns servers",
        [
          Alcotest.test_case "resolver answers zone" `Quick test_resolver_answers_zone;
          Alcotest.test_case "resolver empty for unknown" `Quick
            test_resolver_empty_for_unknown;
          Alcotest.test_case "resolver chases CNAMEs" `Quick
            test_resolver_chases_cnames;
          Alcotest.test_case "resolver uses cache" `Quick
            test_resolver_uses_cache;
          Alcotest.test_case "malicious forges" `Quick test_malicious_forges;
        ] );
    ]
