(* Sanitizer tests: shadow-label encoding, oracle detection rules
   (redzones, return slots, tainted pc/syscall, per-parse dedup), the
   strict-observer contract (sanitized runs bit-identical to plain runs
   over the whole exploit matrix), the detection matrix itself, its
   deterministic JSON, zero false positives on benign traffic, and the
   wire-offset provenance round-trip on both ISAs. *)

module Shadow = Memsim.Shadow
module Oracle = Sanitizer.Oracle
module E = Core.Experiments
module Dnsproxy = Connman.Dnsproxy
module Autogen = Exploit.Autogen
module Profile = Defense.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let lookup = Dns.Name.of_string "ipv4.connman.net"

let mk_config ?(version = Connman.Version.v1_34) arch profile seed =
  { Dnsproxy.version; arch; profile; boot_seed = seed; diversity_seed = None }

let benign_wire d =
  let query = Dnsproxy.make_query d lookup in
  Dns.Packet.encode
    (Dns.Packet.response ~query
       [ Dns.Packet.a_record lookup ~ttl:300 ~ipv4:0x5DB8_D822 ])

(* --- shadow labels --- *)

let test_label_roundtrip () =
  let l = Shadow.make ~src:3 ~offset:1057 in
  check_bool "non-clean" true (l <> Shadow.clean);
  check_int "source" 3 (Shadow.source_of l);
  check_int "offset" 1057 (Shadow.offset_of l);
  let l0 = Shadow.make ~src:0 ~offset:0 in
  check_bool "source 0 offset 0 is still tainted" true (l0 <> Shadow.clean);
  check_int "source 0" 0 (Shadow.source_of l0);
  check_int "offset 0" 0 (Shadow.offset_of l0);
  let top = Shadow.make ~src:5 ~offset:0xFFFE in
  check_int "max offset survives the source bits" 5 (Shadow.source_of top);
  check_int "max offset" 0xFFFE (Shadow.offset_of top);
  Alcotest.check_raises "offset out of range"
    (Invalid_argument "Shadow.make: offset 65535 out of range") (fun () ->
      ignore (Shadow.make ~src:0 ~offset:0xFFFF))

let test_label_join () =
  let a = Shadow.make ~src:1 ~offset:4 in
  let b = Shadow.make ~src:2 ~offset:9 in
  check_int "join clean x" a (Shadow.join Shadow.clean a);
  check_int "join x clean" a (Shadow.join a Shadow.clean);
  check_int "join keeps the first operand" a (Shadow.join a b);
  check_int "join clean clean" Shadow.clean (Shadow.join Shadow.clean Shadow.clean)

let test_shadow_map () =
  let s = Shadow.create () in
  check_int "unset is clean" 0 (Shadow.get s 0x8048_1234);
  let l = Shadow.make ~src:0 ~offset:7 in
  Shadow.set s 0xBFFF_0000 l;
  Shadow.set s 0xBFFF_1000 l;
  (* a different page *)
  check_int "set/get" l (Shadow.get s 0xBFFF_0000);
  check_int "two tainted bytes" 2 (Shadow.tainted s);
  Shadow.clear_range s 0xBFFF_0000 ~len:16;
  check_int "cleared byte" 0 (Shadow.get s 0xBFFF_0000);
  check_int "one left" 1 (Shadow.tainted s);
  Shadow.clear s;
  check_int "all cleared" 0 (Shadow.tainted s)

(* --- oracle detection rules (synthetic stores) --- *)

let tainted_label o = ignore o; Shadow.make ~src:0 ~offset:42

let test_redzone_rule () =
  let o = Oracle.create () in
  let src = Oracle.new_source o ~origin:"test" ~length:64 in
  check_int "first source id" 0 src;
  Oracle.add_redzone o ~base:0x1000 ~len:8;
  (* Clean stores into the redzone never report (prologue spills). *)
  Oracle.store o ~pc:0x10 ~step:1 ~addr:0x1000 ~len:4 ~value:0 ~label:Shadow.clean;
  check_int "clean store is free" 0 (Oracle.report_count o);
  Oracle.store o ~pc:0x14 ~step:2 ~addr:0x1004 ~len:1 ~value:0x41
    ~label:(tainted_label o);
  check_int "tainted store fires" 1 (Oracle.report_count o);
  check_int "kind count" 1 (Oracle.count o Oracle.Redzone_write);
  (* The same zone reports once per parse. *)
  Oracle.store o ~pc:0x18 ~step:3 ~addr:0x1005 ~len:1 ~value:0x42
    ~label:(tainted_label o);
  check_int "deduped within the parse" 1 (Oracle.report_count o);
  Oracle.begin_parse o;
  check_int "reports survive begin_parse" 1 (Oracle.report_count o)

let test_ret_slot_rule () =
  let o = Oracle.create () in
  ignore (Oracle.new_source o ~origin:"test" ~length:64);
  Oracle.note_ret_slot o 0x2000;
  check_int "one slot" 1 (Oracle.ret_slot_count o);
  (* A 1-byte tainted store into the middle of the slot still hits it. *)
  Oracle.store o ~pc:0x10 ~step:1 ~addr:0x2002 ~len:1 ~value:0x41
    ~label:(tainted_label o);
  check_int "slot overwrite" 1 (Oracle.count o Oracle.Ret_slot_overwrite);
  Oracle.store o ~pc:0x14 ~step:2 ~addr:0x2000 ~len:4 ~value:0x4141_4141
    ~label:(tainted_label o);
  check_int "once per slot per parse" 1 (Oracle.count o Oracle.Ret_slot_overwrite);
  (* A legitimately consumed slot stops being one. *)
  let o2 = Oracle.create () in
  ignore (Oracle.new_source o2 ~origin:"test" ~length:64);
  Oracle.note_ret_slot o2 0x2000;
  Oracle.clear_ret_slot o2 0x2000;
  Oracle.store o2 ~pc:0x10 ~step:1 ~addr:0x2000 ~len:4 ~value:0
    ~label:(tainted_label o2);
  check_int "cleared slot is silent" 0 (Oracle.count o2 Oracle.Ret_slot_overwrite)

let test_pc_and_syscall_rules () =
  let o = Oracle.create () in
  ignore (Oracle.new_source o ~origin:"udp" ~length:64);
  Oracle.check_pc o ~pc:0x20 ~step:5 ~target:0xdead ~slot:0x3000
    ~label:Shadow.clean ~detail:"clean ret";
  check_int "clean pc is silent" 0 (Oracle.report_count o);
  Oracle.check_pc o ~pc:0x20 ~step:6 ~target:0xdead ~slot:0x3000
    ~label:(Shadow.make ~src:0 ~offset:9) ~detail:"tainted ret";
  Oracle.check_syscall o ~pc:0x24 ~step:7 ~number:11 ~addr:0x4000
    ~label:(Shadow.make ~src:0 ~offset:12) ~detail:"execve";
  check_int "both fired" 2 (Oracle.report_count o);
  let r = Option.get (Oracle.first_report o) in
  check_string "kind name" "tainted-pc" (Oracle.kind_name r.Oracle.kind);
  check_int "wire offset" 9 (Oracle.wire_offset r);
  check_int "source id" 0 (Oracle.source_id r);
  check_string "origin" "udp" r.Oracle.origin;
  (* Severity is the detection-point ordering. *)
  check_bool "severity ascending" true
    (Oracle.severity Oracle.Redzone_write
       < Oracle.severity Oracle.Ret_slot_overwrite
    && Oracle.severity Oracle.Ret_slot_overwrite
       < Oracle.severity Oracle.Tainted_pc
    && Oracle.severity Oracle.Tainted_pc
       < Oracle.severity Oracle.Tainted_syscall)

(* --- strict observer: sanitized runs bit-identical to plain runs --- *)

let fire_cell ~sanitized (id, _section, arch, profile, strategy, _desc) =
  let d = Dnsproxy.create (mk_config arch profile 42) in
  if sanitized then Dnsproxy.set_sanitizer d (Some (Oracle.create ()));
  match E.fire ~strategy d with
  | Error e -> Alcotest.fail (id ^ ": " ^ e)
  | Ok (_, disp) -> (id, E.disposition_word disp, Dnsproxy.last_steps d)

let test_differential_matrix () =
  let plain = List.map (fire_cell ~sanitized:false) E.matrix_cells in
  let sanitized = List.map (fire_cell ~sanitized:true) E.matrix_cells in
  List.iter2
    (fun (id, w0, s0) (_, w1, s1) ->
      check_string (id ^ " disposition") w0 w1;
      check_int (id ^ " retired instructions") s0 s1)
    plain sanitized

let dos_and_benign ~sanitized arch =
  let d = Dnsproxy.create (mk_config arch Profile.wx 42) in
  if sanitized then Dnsproxy.set_sanitizer d (Some (Oracle.create ()));
  let q = Dnsproxy.make_query d lookup in
  let dos_wire =
    Dns.Craft.hostile_response ~query:q
      ~raw_name:(Dns.Craft.dos_name ~size:8192) ()
  in
  let dos = E.disposition_word (Dnsproxy.handle_response d dos_wire) in
  let d2 = Dnsproxy.create (mk_config arch Profile.wx 42) in
  if sanitized then Dnsproxy.set_sanitizer d2 (Some (Oracle.create ()));
  let benign = E.disposition_word (Dnsproxy.handle_response d2 (benign_wire d2)) in
  (dos, Dnsproxy.last_steps d, benign, Dnsproxy.last_steps d2)

let test_differential_dos_benign () =
  List.iter
    (fun arch ->
      let d0, s0, b0, t0 = dos_and_benign ~sanitized:false arch in
      let d1, s1, b1, t1 = dos_and_benign ~sanitized:true arch in
      let a = Loader.Arch.name arch in
      check_string (a ^ " dos disposition") d0 d1;
      check_int (a ^ " dos steps") s0 s1;
      check_string (a ^ " benign disposition") b0 b1;
      check_int (a ^ " benign steps") t0 t1)
    Loader.Arch.all

(* Direct [Process.call]: outcome, step count, return value, and the
   whole register file must match with the oracle attached. *)
let test_differential_registers () =
  List.iter
    (fun arch ->
      let run ~sanitizer () =
        let d = Dnsproxy.create (mk_config arch Profile.wx 7) in
        let proc = Dnsproxy.process d in
        let wire = benign_wire d in
        let buf = proc.Loader.Process.layout.Loader.Layout.heap_base in
        Memsim.Memory.write_bytes proc.Loader.Process.mem buf wire;
        Loader.Process.call_named proc ?sanitizer ~fuel:400_000
          ~entry:"parse_response"
          ~args:[ buf; String.length wire ]
      in
      let p = run ~sanitizer:None () in
      let s = run ~sanitizer:(Some (Oracle.create ())) () in
      let a = Loader.Arch.name arch in
      check_bool (a ^ " outcome") true
        (p.Loader.Process.outcome = s.Loader.Process.outcome);
      check_int (a ^ " steps") p.Loader.Process.steps s.Loader.Process.steps;
      check_int (a ^ " ret") p.Loader.Process.ret s.Loader.Process.ret;
      Alcotest.(check (array int))
        (a ^ " register file") p.Loader.Process.regs s.Loader.Process.regs)
    Loader.Arch.all

(* --- the detection matrix --- *)

let test_detection_matrix () =
  let rows = E.detection_matrix ~seed:1 () in
  check_int "nine cells" 9 (List.length rows);
  List.iter
    (fun (r : E.detection_row) ->
      check_bool (r.E.det_cell ^ " ok") true r.E.det_ok;
      if String.length r.E.det_cell >= 6
         && String.sub r.E.det_cell 0 6 = "benign"
      then check_int (r.E.det_cell ^ " zero reports") 0 r.E.det_reports
      else begin
        check_bool (r.E.det_cell ^ " detected") true (r.E.det_reports > 0);
        let first = Option.get r.E.det_first in
        check_bool (r.E.det_cell ^ " caught before the hijack completes") true
          (Oracle.severity first.Oracle.kind
          <= Oracle.severity Oracle.Tainted_pc)
      end)
    rows

let test_detection_determinism () =
  let j1 = E.detection_json ~seed:1 (E.detection_matrix ~seed:1 ()) in
  let j2 = E.detection_json ~seed:1 (E.detection_matrix ~seed:1 ()) in
  check_string "byte-identical json" j1 j2;
  match Telemetry.Json.validate j1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid detection json: " ^ e)

(* --- zero false positives over consecutive benign datagrams --- *)

let test_benign_stream_zero_fp () =
  List.iter
    (fun arch ->
      let d = Dnsproxy.create (mk_config arch Profile.wx 11) in
      let oracle = Oracle.create () in
      Dnsproxy.set_sanitizer d (Some oracle);
      for _ = 1 to 5 do
        match Dnsproxy.handle_response d (benign_wire d) with
        | Dnsproxy.Cached _ -> ()
        | other ->
            Alcotest.failf "%s: benign parse was %s" (Loader.Arch.name arch)
              (E.disposition_word other)
      done;
      check_int (Loader.Arch.name arch ^ " zero reports") 0
        (Oracle.report_count oracle))
    Loader.Arch.all

(* --- provenance round-trip: report bytes = wire bytes --- *)

(* A report's label was captured at detection time (the slot's shadow may
   be legitimately overwritten later — x86 stack shellcode pushes over
   its own return slot).  The label points at the wire byte that became
   the low byte of the reported value: follow it back into the exact
   datagram the daemon parsed. *)
let check_report_bytes arch wire (r : Oracle.report) =
  let a = Loader.Arch.name arch in
  let what = Oracle.kind_name r.Oracle.kind in
  check_string (Printf.sprintf "%s %s origin" a what) "udp" r.Oracle.origin;
  check_int (Printf.sprintf "%s %s source" a what) 0 (Oracle.source_id r);
  let off = Oracle.wire_offset r in
  check_bool
    (Printf.sprintf "%s %s offset within the datagram" a what)
    true
    (off >= 0 && off < String.length wire);
  check_int
    (Printf.sprintf "%s %s wire[%d] = low byte of 0x%x" a what off
       r.Oracle.target)
    (r.Oracle.target land 0xFF)
    (Char.code wire.[off])

(* Fire one exploit cell with the oracle attached, keeping the wire bytes
   the daemon saw, then check that both the return-slot overwrite and the
   control-flow hijack chain back to bytes of that datagram. *)
let provenance_roundtrip arch profile strategy =
  let config = mk_config arch profile 1 in
  let d = Dnsproxy.create config in
  let oracle = Oracle.create () in
  Dnsproxy.set_sanitizer d (Some oracle);
  let analysis =
    Dnsproxy.process
      (Dnsproxy.create { config with Dnsproxy.boot_seed = config.Dnsproxy.boot_seed + 5000 })
  in
  match Autogen.generate ~analysis:(Exploit.Target.connman analysis) ~strategy () with
  | Error e -> Alcotest.fail e
  | Ok (_, raw_name) -> (
      let query = Dnsproxy.make_query d lookup in
      let wire = Autogen.response_for ~query ~raw_name in
      (match Dnsproxy.handle_response d wire with
      | Dnsproxy.Compromised _ -> ()
      | other ->
          Alcotest.failf "%s: exploit was %s" (Loader.Arch.name arch)
            (E.disposition_word other));
      let find kind =
        match
          List.find_opt
            (fun (r : Oracle.report) -> r.Oracle.kind = kind)
            (Oracle.reports oracle)
        with
        | Some r -> r
        | None ->
            Alcotest.failf "%s: no %s report" (Loader.Arch.name arch)
              (Oracle.kind_name kind)
      in
      check_report_bytes arch wire (find Oracle.Ret_slot_overwrite);
      check_report_bytes arch wire (find Oracle.Tainted_pc))

let test_provenance_x86 () =
  (* E1: the 1-byte-NOP-sled code-injection path. *)
  provenance_roundtrip Loader.Arch.X86 Profile.none Autogen.Code_injection

let test_provenance_arm () =
  (* E4: the pop {…, pc} gadget-chain path under W^X. *)
  provenance_roundtrip Loader.Arch.Arm Profile.wx Autogen.Rop_wx

let () =
  Alcotest.run "sanitizer"
    [
      ( "shadow",
        [
          Alcotest.test_case "label roundtrip" `Quick test_label_roundtrip;
          Alcotest.test_case "join keeps first provenance" `Quick
            test_label_join;
          Alcotest.test_case "sparse map set/get/clear" `Quick test_shadow_map;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "redzone rule + dedup" `Quick test_redzone_rule;
          Alcotest.test_case "return-slot rule + lifecycle" `Quick
            test_ret_slot_rule;
          Alcotest.test_case "tainted pc / syscall rules" `Quick
            test_pc_and_syscall_rules;
        ] );
      ( "observer",
        [
          Alcotest.test_case "matrix outcomes unchanged when sanitized" `Slow
            test_differential_matrix;
          Alcotest.test_case "dos + benign unchanged when sanitized" `Quick
            test_differential_dos_benign;
          Alcotest.test_case "register-file identical on a direct call" `Quick
            test_differential_registers;
        ] );
      ( "detection",
        [
          Alcotest.test_case "all cells detected, benign clean" `Slow
            test_detection_matrix;
          Alcotest.test_case "byte-identical json across runs" `Slow
            test_detection_determinism;
          Alcotest.test_case "benign stream has zero reports" `Quick
            test_benign_stream_zero_fp;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "x86 nop-sled wire round-trip" `Quick
            test_provenance_x86;
          Alcotest.test_case "arm pop-pc wire round-trip" `Quick
            test_provenance_arm;
        ] );
    ]
