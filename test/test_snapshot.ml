(* Fork/restore differential over the exploit matrix.

   The copy-on-write snapshot layer's correctness claim mirrors the
   icache's: it changes speed, never outcomes.  These tests discharge it
   against the hardest workloads in the repo — every §III exploit cell,
   the DoS expansion, and a benign parse, on both ISAs.  Each cell runs
   four times from one boot: a baseline call, a replay after [restore],
   a run inside a [fork]ed process, and a second restore after the fork
   diverged.  All four must agree bit-for-bit on stop reason, retired
   instruction count, return value, and the full register file.

   The replays deliberately reuse the warm decoded-instruction cache
   from the baseline run: restore hands dirtied pages a fresh generation
   (stale entries cannot revalidate) while untouched text pages keep
   theirs (hot entries survive) — agreement here is the end-to-end proof
   of that contract. *)

module Mem = Memsim.Memory
module O = Machine.Outcome
module Process = Loader.Process

let lookup_name = Dns.Name.of_string "ipv4.connman.net"

let check_same_run name (a : Process.run_result) (b : Process.run_result) =
  Alcotest.(check string)
    (name ^ ": outcome")
    (Format.asprintf "%a" O.pp a.Process.outcome)
    (Format.asprintf "%a" O.pp b.Process.outcome);
  Alcotest.(check int) (name ^ ": steps") a.Process.steps b.Process.steps;
  Alcotest.(check int) (name ^ ": ret") a.Process.ret b.Process.ret;
  Alcotest.(check (array int))
    (name ^ ": registers")
    a.Process.regs b.Process.regs

(* One boot, one hostile (or benign) wire, four executions. *)
let run_cell name ~config ~raw_name ~make_wire =
  let d = Connman.Dnsproxy.create config in
  let query = Connman.Dnsproxy.make_query d lookup_name in
  let wire =
    match raw_name with
    | Some raw_name -> Exploit.Autogen.response_for ~query ~raw_name
    | None -> make_wire query
  in
  let proc = Connman.Dnsproxy.process d in
  let buf = proc.Process.layout.Loader.Layout.heap_base in
  let entry = Process.symbol proc "parse_response" in
  let exec p =
    Mem.write_bytes p.Process.mem buf wire;
    Process.call p ~fuel:400_000 ~entry ~args:[ buf; String.length wire ]
  in
  let snap = Process.snapshot proc in
  let baseline = exec proc in
  Alcotest.(check bool) (name ^ ": scenario ran") true (baseline.Process.steps > 100);
  Process.restore proc snap;
  check_same_run (name ^ "/restore") baseline (exec proc);
  let forked = Process.fork proc snap in
  check_same_run (name ^ "/fork") baseline (exec forked);
  (* The parent restores cleanly even after the fork diverged (they
     share frozen pages copy-on-write). *)
  Process.restore proc snap;
  check_same_run (name ^ "/restore-after-fork") baseline (exec proc);
  baseline

let config ~arch ~profile ~boot_seed =
  {
    Connman.Dnsproxy.version = Connman.Version.v1_34;
    arch;
    profile;
    boot_seed;
    diversity_seed = None;
  }

let hostile_cell name ~arch ~profile ?strategy () =
  let config = config ~arch ~profile ~boot_seed:41 in
  let analysis =
    Connman.Dnsproxy.process
      (Connman.Dnsproxy.create { config with Connman.Dnsproxy.boot_seed = 1041 })
  in
  match
    Exploit.Autogen.generate ~analysis:(Exploit.Target.connman analysis)
      ?strategy ()
  with
  | Error e -> Alcotest.failf "%s: generation failed: %s" name e
  | Ok (_payload, raw_name) ->
      ignore (run_cell name ~config ~raw_name:(Some raw_name) ~make_wire:(fun _ -> ""))

let test_exploit_cells () =
  List.iter
    (fun (name, arch, profile) -> hostile_cell name ~arch ~profile ())
    [
      ("E1 injection/x86", Loader.Arch.X86, Defense.Profile.none);
      ("E2 injection/arm", Loader.Arch.Arm, Defense.Profile.none);
      ("E3 ret2libc/x86", Loader.Arch.X86, Defense.Profile.wx);
      ("E4 rop/arm", Loader.Arch.Arm, Defense.Profile.wx);
      ("E5 rop-aslr/x86", Loader.Arch.X86, Defense.Profile.wx_aslr);
      ("E6 rop-aslr/arm", Loader.Arch.Arm, Defense.Profile.wx_aslr);
    ]

let test_dos_cells () =
  List.iter
    (fun (arch, tag) ->
      hostile_cell ("dos/" ^ tag) ~arch ~profile:Defense.Profile.wx_aslr
        ~strategy:Exploit.Autogen.Dos ())
    [ (Loader.Arch.X86, "x86"); (Loader.Arch.Arm, "arm") ]

let test_benign_cells () =
  List.iter
    (fun (arch, tag) ->
      let config = config ~arch ~profile:Defense.Profile.wx_aslr ~boot_seed:23 in
      let baseline =
        run_cell ("benign/" ^ tag) ~config ~raw_name:None
          ~make_wire:(fun query ->
            Dns.Packet.encode
              (Dns.Packet.response ~query
                 [ Dns.Packet.a_record lookup_name ~ttl:60 ~ipv4:0x5DB8D822 ]))
      in
      Alcotest.(check string)
        ("benign/" ^ tag ^ ": parse succeeded")
        "halted (normal return)"
        (Format.asprintf "%a" O.pp baseline.Process.outcome))
    [ (Loader.Arch.X86, "x86"); (Loader.Arch.Arm, "arm") ]

(* Restore also reconciles mapping changes the guest made mid-run: the
   injection cells flip page permissions (mprotect analogues) and the
   loader-level fork must reproduce that state too.  This is covered
   implicitly above (E1/E2 run shellcode off a remapped stack), but pin
   the region table explicitly as well. *)
let test_restore_reconciles_regions () =
  let config = config ~arch:Loader.Arch.X86 ~profile:Defense.Profile.none ~boot_seed:41 in
  let d = Connman.Dnsproxy.create config in
  ignore (Connman.Dnsproxy.make_query d lookup_name);
  let proc = Connman.Dnsproxy.process d in
  let snap = Process.snapshot proc in
  let regions_before = Mem.regions proc.Process.mem in
  (* Mutate the mapping state behind the snapshot's back. *)
  Mem.map proc.Process.mem ~base:0x70000000 ~size:0x2000 ~perm:Mem.rw
    ~name:"scratch";
  Mem.write_u32 proc.Process.mem 0x70000000 0xFEEDFACE;
  Process.restore proc snap;
  Alcotest.(check bool)
    "region table restored" true
    (Mem.regions proc.Process.mem = regions_before);
  Alcotest.(check bool)
    "scratch mapping gone" false
    (Mem.is_mapped proc.Process.mem 0x70000000)

let () =
  Alcotest.run "snapshot"
    [
      ( "fork/restore = baseline",
        [
          Alcotest.test_case "all exploit cells" `Quick test_exploit_cells;
          Alcotest.test_case "dos payloads" `Quick test_dos_cells;
          Alcotest.test_case "benign parses" `Quick test_benign_cells;
        ] );
      ( "mapping reconciliation",
        [
          Alcotest.test_case "regions restored" `Quick
            test_restore_reconciles_regions;
        ] );
    ]
