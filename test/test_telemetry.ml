(* Telemetry tests: ring-buffer overflow semantics, byte-identical trace
   determinism, Chrome-JSON well-formedness, cross-layer coverage,
   profiler count conservation, metrics exposition, and the
   zero-interference contract — exploit-matrix outcomes are identical
   with the tracer and profiler attached. *)

module Tr = Telemetry.Trace
module Prof = Telemetry.Profile
module Met = Telemetry.Metrics
module E = Core.Experiments
module Dnsproxy = Connman.Dnsproxy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- ring buffer --- *)

let test_ring_overflow () =
  let t = Tr.create ~capacity:8 () in
  for i = 1 to 20 do
    Tr.emit t ~ts:i ~cat:"test" ~track:"ring" (Printf.sprintf "e%02d" i)
  done;
  check_int "capacity" 8 (Tr.capacity t);
  check_int "length" 8 (Tr.length t);
  check_int "emitted" 20 (Tr.emitted t);
  check_int "dropped" 12 (Tr.dropped t);
  Alcotest.(check (list string))
    "most recent window, oldest first"
    [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]
    (List.map (fun e -> e.Tr.name) (Tr.events t))

let test_ring_under_capacity () =
  let t = Tr.create ~capacity:8 () in
  for i = 1 to 5 do
    Tr.emit t ~ts:i ~cat:"test" ~track:"ring" (Printf.sprintf "e%d" i)
  done;
  check_int "length" 5 (Tr.length t);
  check_int "nothing dropped" 0 (Tr.dropped t);
  Tr.clear t;
  check_int "cleared" 0 (Tr.length t)

let test_clock_is_monotonic () =
  let t = Tr.create () in
  Tr.set_now t 100;
  Tr.set_now t 50;
  check_int "earlier set_now ignored" 100 (Tr.now t)

(* --- instrumented cell runs --- *)

let traced_e3 seed =
  let trace = Tr.create () in
  match E.run_instrumented_cell ~seed ~cell:"E3" ~trace () with
  | Error e -> Alcotest.fail e
  | Ok (row, _) -> (trace, row)

let test_trace_determinism () =
  let t1, _ = traced_e3 5 in
  let t2, _ = traced_e3 5 in
  check_bool "events recorded" true (Tr.length t1 > 0);
  check_string "byte-identical chrome json" (Tr.to_chrome_json t1)
    (Tr.to_chrome_json t2)

let test_trace_json_well_formed () =
  let t, _ = traced_e3 1 in
  match Telemetry.Json.validate (Tr.to_chrome_json t) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid chrome json: " ^ e)

let test_trace_covers_layers () =
  let t, _ = traced_e3 1 in
  let cats =
    List.sort_uniq compare (List.map (fun e -> e.Tr.cat) (Tr.events t))
  in
  List.iter
    (fun c -> check_bool (c ^ " events present") true (List.mem c cats))
    [ "cpu"; "mem"; "net"; "daemon"; "supervisor" ]

let test_unknown_cell_and_schedule () =
  (match E.run_instrumented_cell ~cell:"E9" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown cell accepted");
  match E.run_instrumented_cell ~cell:"E3" ~schedule:"stormy" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schedule accepted"

(* --- zero interference: outcomes unchanged with telemetry attached --- *)

let fire_cell ~instrumented (id, _section, arch, profile, strategy, _desc) =
  let d =
    Dnsproxy.create
      {
        Dnsproxy.default_config with
        Dnsproxy.arch;
        profile;
        boot_seed = 42;
      }
  in
  if instrumented then begin
    Dnsproxy.set_trace d (Some (Tr.create ()));
    Dnsproxy.set_profiler d (Some (Prof.create ()))
  end;
  match E.fire ~strategy d with
  | Error e -> Alcotest.fail (id ^ ": " ^ e)
  | Ok (_, disp) -> (id, E.disposition_word disp, Dnsproxy.last_steps d)

let test_differential_outcomes () =
  let plain = List.map (fire_cell ~instrumented:false) E.matrix_cells in
  let traced = List.map (fire_cell ~instrumented:true) E.matrix_cells in
  List.iter2
    (fun (id, w0, s0) (_, w1, s1) ->
      check_string (id ^ " disposition") w0 w1;
      check_int (id ^ " retired instructions") s0 s1)
    plain traced

(* --- profiler --- *)

let test_profiler_buckets_by_symbol () =
  let p = Prof.create () in
  List.iter (Prof.record p) [ 16; 16; 20; 24; 16; 20 ];
  check_int "total" 6 (Prof.total p);
  check_int "distinct pcs" 3 (Prof.distinct_pcs p);
  let symbolize = function
    | 16 -> "fn_a+0x0"
    | 20 -> "fn_a+0x4"
    | _ -> "fn_b"
  in
  Alcotest.(check (list (pair string int)))
    "offsets aggregate under the base symbol"
    [ ("fn_a", 5); ("fn_b", 1) ]
    (Prof.report p ~symbolize);
  check_string "folded stacks" "all;fn_a 5\nall;fn_b 1\n"
    (Prof.folded p ~symbolize ());
  Prof.clear p;
  check_int "cleared" 0 (Prof.total p)

let test_profiler_conservation_daemon () =
  let d = Dnsproxy.create Dnsproxy.default_config in
  let p = Prof.create () in
  Dnsproxy.set_profiler d (Some p);
  let name = Dns.Name.of_string "ipv4.connman.net" in
  let query = Dnsproxy.make_query d name in
  let wire =
    Dns.Packet.encode
      (Dns.Packet.response ~query [ Dns.Packet.a_record name ~ttl:300 ~ipv4:1 ])
  in
  (match Dnsproxy.handle_response d wire with
  | Dnsproxy.Cached _ -> ()
  | other ->
      Alcotest.fail (Format.asprintf "%a" Dnsproxy.pp_disposition other));
  check_int "samples equal retired instructions" (Dnsproxy.last_steps d)
    (Prof.total p);
  let proc = Dnsproxy.process d in
  let symbolize pc = Exploit.Debugger.symbolize proc pc in
  let sum =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Prof.report p ~symbolize)
  in
  check_int "per-symbol counts sum to total" (Prof.total p) sum

let test_profiler_conservation_cell () =
  let p = Prof.create () in
  match E.run_instrumented_cell ~seed:1 ~cell:"E3" ~profiler:p () with
  | Error e -> Alcotest.fail e
  | Ok (_, symbolize) ->
      check_bool "instructions recorded" true (Prof.total p > 0);
      let sum =
        List.fold_left (fun a (_, n) -> a + n) 0 (Prof.report p ~symbolize)
      in
      check_int "conservation across the whole cell" (Prof.total p) sum

(* --- metrics --- *)

let test_metrics_exposition () =
  let reg = Met.create () in
  let c =
    Met.counter reg ~help:"requests seen"
      ~labels:[ ("host", "a") ]
      "demo_requests_total"
  in
  Met.inc c;
  Met.inc ~by:2.0 c;
  let g = Met.gauge reg ~help:"current depth" "demo_depth" in
  Met.set g 4.5;
  let h = Met.histogram reg ~help:"sizes" ~buckets:[ 1.; 10. ] "demo_size" in
  Met.observe h 0.5;
  Met.observe h 5.0;
  Met.observe h 50.0;
  check_string "exposition bytes"
    ("# HELP demo_depth current depth\n"
   ^ "# TYPE demo_depth gauge\n" ^ "demo_depth 4.500000\n"
   ^ "# HELP demo_requests_total requests seen\n"
   ^ "# TYPE demo_requests_total counter\n"
   ^ "demo_requests_total{host=\"a\"} 3\n" ^ "# HELP demo_size sizes\n"
   ^ "# TYPE demo_size histogram\n" ^ "demo_size_bucket{le=\"1\"} 1\n"
   ^ "demo_size_bucket{le=\"10\"} 2\n" ^ "demo_size_bucket{le=\"+Inf\"} 3\n"
   ^ "demo_size_sum 55.500000\n" ^ "demo_size_count 3\n")
    (Met.expose reg)

let test_metrics_reregistration_replaces () =
  let reg = Met.create () in
  let c1 = Met.counter reg "dup_total" in
  Met.inc ~by:9.0 c1;
  let c2 = Met.counter reg "dup_total" in
  Met.inc c2;
  check_string "latest registration wins"
    "# TYPE dup_total counter\ndup_total 1\n" (Met.expose reg)

let test_metrics_from_instrumented_cell () =
  let reg = Met.create () in
  match E.run_instrumented_cell ~seed:1 ~cell:"DoS" ~metrics:reg () with
  | Error e -> Alcotest.fail e
  | Ok (row, _) ->
      let text = Met.expose reg in
      check_bool "netsim counters exposed" true
        (contains text "netsim_delivered_total ");
      check_bool "daemon series exposed" true
        (contains text "daemon_restarts_total{daemon=\"connmand\"} ");
      check_bool "supervisor restarts agree with the chaos row" true
        (contains text
           (Printf.sprintf "supervisor_restarts_total{supervisor=\"victim\"} %d\n"
              row.E.restarts))

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow keeps the newest window" `Quick
            test_ring_overflow;
          Alcotest.test_case "under capacity drops nothing" `Quick
            test_ring_under_capacity;
          Alcotest.test_case "clock is monotonic" `Quick
            test_clock_is_monotonic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "same seed, byte-identical json" `Quick
            test_trace_determinism;
          Alcotest.test_case "chrome json is well-formed" `Quick
            test_trace_json_well_formed;
          Alcotest.test_case "events from every layer" `Quick
            test_trace_covers_layers;
          Alcotest.test_case "unknown cell/schedule rejected" `Quick
            test_unknown_cell_and_schedule;
        ] );
      ( "interference",
        [
          Alcotest.test_case "matrix outcomes unchanged when traced" `Slow
            test_differential_outcomes;
        ] );
      ( "profile",
        [
          Alcotest.test_case "buckets by base symbol" `Quick
            test_profiler_buckets_by_symbol;
          Alcotest.test_case "conserves one parse's instructions" `Quick
            test_profiler_conservation_daemon;
          Alcotest.test_case "conserves a whole chaos cell" `Quick
            test_profiler_conservation_cell;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "deterministic exposition" `Quick
            test_metrics_exposition;
          Alcotest.test_case "re-registration replaces" `Quick
            test_metrics_reregistration_replaces;
          Alcotest.test_case "registry over an instrumented cell" `Quick
            test_metrics_from_instrumented_cell;
        ] );
    ]
