(* Tests for the zero-copy wire codec and the satellite codec fixes:
   view/arena behaviour, [Name.of_string] totality, count validation,
   the strictly-backward compression-pointer rule, round-trip
   properties, and the codec differential against [Dns.Legacy]. *)

module Name = Dns.Name
module Packet = Dns.Packet
module Wire = Dns.Wire
module Legacy = Dns.Legacy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let n = Name.of_string

let sample_response () =
  let query = Packet.query ~id:0x1A2B (n "www.example.com") Packet.A in
  Packet.response ~query
    [
      Packet.cname_record (n "www.example.com") ~ttl:600
        ~target:(n "web.example.com");
      Packet.a_record (n "web.example.com") ~ttl:300 ~ipv4:0x5DB8D822;
    ]

(* --- Name.of_string totality (regression) ---------------------------- *)

(* These all crashed or mis-parsed before the fix: "a..b" collapsed the
   empty label into ["a"; "b"], and labels longer than 63 bytes were
   accepted even though they cannot be wire-encoded. *)
let test_of_string_rejects_empty_labels () =
  Alcotest.check_raises "inner empty label"
    (Invalid_argument "Dns.Name.of_string: empty label in \"a..b\"")
    (fun () -> ignore (n "a..b"));
  Alcotest.check_raises "leading dot"
    (Invalid_argument "Dns.Name.of_string: empty label in \".a\"") (fun () ->
      ignore (n ".a"));
  Alcotest.(check (option (list string)))
    "of_string_opt mirrors" None
    (Name.of_string_opt "a..b")

let test_of_string_rejects_oversized_labels () =
  let big = String.make 64 'x' in
  Alcotest.check_raises "64-byte label"
    (Invalid_argument ("Dns.Name.of_string: label exceeds 63 bytes: "
                      ^ Printf.sprintf "%S" big))
    (fun () -> ignore (n (big ^ ".com")));
  (* 63 bytes is the wire maximum and must still work. *)
  let max = String.make 63 'x' in
  Alcotest.(check (list string)) "63-byte label ok" [ max; "com" ]
    (n (max ^ ".com"))

let test_of_string_trailing_dot () =
  Alcotest.(check (list string)) "FQDN dot stripped" [ "example"; "com" ]
    (n "example.com.");
  Alcotest.(check (list string)) "root" [] (n "");
  Alcotest.(check (list string)) "lone dot is root" [] (n ".")

(* --- count validation + encode_udp (regression) ---------------------- *)

(* Before the fix the u16 header fields silently wrapped: 65536 answers
   encoded as ancount 0 with 65536 RRs trailing. *)
let test_encode_rejects_wrapped_counts () =
  let rr = Packet.a_record (n "a.example") ~ttl:1 ~ipv4:1 in
  let q = Packet.query ~id:1 (n "a.example") Packet.A in
  let huge = List.init 65536 (fun _ -> rr) in
  Alcotest.check_raises "answers overflow"
    (Invalid_argument "Dns.Packet.encode: answers count exceeds 65535")
    (fun () -> ignore (Packet.encode { (Packet.response ~query:q []) with
                                       Packet.answers = huge }));
  Alcotest.check_raises "additionals overflow"
    (Invalid_argument "Dns.Packet.encode: additionals count exceeds 65535")
    (fun () ->
      ignore
        (Packet.encode
           { (Packet.response ~query:q []) with Packet.additionals = huge }))

let test_encode_udp_truncates_honestly () =
  let q = Packet.query ~id:9 (n "big.example") Packet.A in
  let answers =
    List.init 100 (fun i ->
        Packet.a_record (n (Printf.sprintf "host-%02d.big.example" i)) ~ttl:60
          ~ipv4:i)
  in
  let full = Packet.response ~query:q answers in
  let wire = Packet.encode_udp ~payload_limit:512 full in
  check_bool "fits the datagram" true (String.length wire <= 512);
  (match Packet.decode wire with
  | Error e -> Alcotest.failf "truncated message must parse: %s" e
  | Ok p ->
      check_bool "TC set" true p.Packet.header.Packet.tc;
      check_int "records dropped" 0 (List.length p.Packet.answers);
      check_int "question kept" 1 (List.length p.Packet.questions);
      check_int "counts honest" 0 (Wire.ancount (let v = Wire.create_view () in
                                                 ignore (Wire.parse v wire); v)));
  (* Small messages pass through untouched. *)
  let small = Packet.response ~query:q [ List.hd answers ] in
  check_string "small unchanged" (Packet.encode small)
    (Packet.encode_udp ~payload_limit:512 small)

(* --- strictly-backward pointers (regression) ------------------------- *)

let header12 = "\x00\x01\x81\x80\x00\x01\x00\x00\x00\x00\x00\x00"

let test_strict_rejects_forward_pointer () =
  (* name at 12 is a pointer to 15, which holds "foo": forward. *)
  let wire = header12 ^ "\xc0\x0f\x00\x03foo\x00" in
  (match Name.decode wire 12 with
  | Error e -> check_string "forward rejected" "forward compression pointer" e
  | Ok _ -> Alcotest.fail "forward pointer accepted");
  (* ... but the permissive Connman walk follows it happily. *)
  match Name.expand_like_connman wire 12 with
  | Ok (raw, used) ->
      check_string "permissive expansion" "\x03foo" raw;
      check_int "pointer consumes two bytes" 2 used
  | Error e -> Alcotest.failf "permissive walk must accept: %s" e

let test_strict_rejects_self_pointer () =
  let wire = header12 ^ "\xc0\x0c\x00" in
  (match Name.decode wire 12 with
  | Error e -> check_string "self rejected" "forward compression pointer" e
  | Ok _ -> Alcotest.fail "self-referential pointer accepted");
  (* Backward pointers — the legitimate kind — still decode. *)
  let wire2 = header12 ^ "\x03foo\x00" ^ "\x03bar\xc0\x0c" in
  match Name.decode wire2 17 with
  | Ok (labels, used) ->
      Alcotest.(check (list string)) "backward ok" [ "bar"; "foo" ] labels;
      check_int "consumed" 6 used
  | Error e -> Alcotest.failf "backward pointer must decode: %s" e

(* --- the zero-copy view ---------------------------------------------- *)

let test_view_accessors () =
  let p = sample_response () in
  let wire = Packet.encode p in
  let v = Wire.create_view () in
  (match Wire.parse v wire with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok () -> ());
  check_int "id" 0x1A2B (Wire.id v);
  check_bool "qr" true (Wire.qr v);
  check_int "qdcount" 1 (Wire.qdcount v);
  check_int "ancount" 2 (Wire.ancount v);
  check_string "question name" "www.example.com"
    (Wire.name_to_string wire (Wire.question_name v 0));
  check_int "qtype" 1 (Wire.question_qtype v 0);
  check_int "rr 0 is CNAME" 5 (Wire.rr_rtype v 0);
  check_int "rr 1 is A" 1 (Wire.rr_rtype v 1);
  check_int "rr 1 ttl" 300 (Wire.rr_ttl v 1);
  check_int "rr 1 rdlen" 4 (Wire.rr_rdlen v 1);
  check_int "rr 1 rdata u32" 0x5DB8D822 (Wire.get_u32 wire (Wire.rr_rdata v 1));
  check_string "rr 1 owner" "web.example.com"
    (Wire.name_to_string wire (Wire.rr_name v 1));
  (* The view is reusable: parsing a different message overwrites it. *)
  let q = Packet.query ~id:7 (n "other.example") Packet.AAAA in
  (match Wire.parse v (Packet.encode q) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok () -> ());
  check_int "reused view id" 7 (Wire.id v);
  check_int "reused view ancount" 0 (Wire.ancount v)

let test_view_matches_decode () =
  let p = sample_response () in
  let wire = Packet.encode p in
  match Packet.decode wire with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok d ->
      check_bool "materialized decode agrees with builder" true (d = p)

(* --- arena vs legacy byte identity ----------------------------------- *)

let test_arena_matches_legacy_buffer () =
  let p = sample_response () in
  List.iter
    (fun compress ->
      check_string
        (Printf.sprintf "compress=%b" compress)
        (Legacy.encode ~compress p)
        (Packet.encode ~compress p))
    [ true; false ];
  check_bool "compression shrinks" true
    (String.length (Packet.encode ~compress:true p)
    < String.length (Packet.encode ~compress:false p))

(* Regression: the arena's suffix matcher used to read bytes beyond the
   write position, so a name could spuriously point at its own
   half-written suffix (caught by the codec differential).  Names whose
   labels contain NUL bytes are the easiest trigger. *)
let test_arena_no_self_match () =
  let name = [ "\x00"; "\x00" ] in
  let p =
    {
      (Packet.query ~id:3 [] Packet.A) with
      Packet.answers = [ { Packet.rname = name; rtype = Packet.A; ttl = 1;
                           rdata = "\x7f\x00\x00\x01" } ];
    }
  in
  let wire = Packet.encode ~compress:true p in
  check_string "arena = legacy" (Legacy.encode ~compress:true p) wire;
  match Packet.decode wire with
  | Ok d -> Alcotest.(check (list string)) "round-trips" name
              (List.hd d.Packet.answers).Packet.rname
  | Error e -> Alcotest.failf "must decode: %s" e

let test_arena_reuse () =
  let a = Wire.arena ~capacity:16 () in
  let p = sample_response () in
  Packet.encode_into a p;
  let first = Wire.contents a in
  Packet.encode_into a (Packet.query ~id:1 (n "q.example") Packet.A);
  let second = Wire.contents a in
  Packet.encode_into a p;
  check_string "arena reset is complete" first (Wire.contents a);
  check_bool "different messages differ" true (first <> second);
  check_string "matches one-shot encode" (Packet.encode p) first

(* --- round-trip properties ------------------------------------------- *)

let label_gen =
  QCheck.Gen.(
    let* len = int_range 1 8 in
    (* Bytes chosen to stress the compression table: repeats, NULs,
       dots, and high bytes. *)
    string_size ~gen:(oneofl [ 'a'; 'b'; '\x00'; '.'; '\xC0'; 'z' ]) (pure len))

let name_gen = QCheck.Gen.(list_size (int_range 0 4) label_gen)

let rr_gen =
  QCheck.Gen.(
    let* rname = name_gen in
    let* rtype = oneofl [ Packet.A; Packet.CNAME; Packet.NS; Packet.TXT ] in
    let* ttl = int_bound 0xFFFF in
    let* rdata =
      if Packet.qtype_code rtype = 1 then
        string_size ~gen:(char_range '\x00' '\xff') (pure 4)
      else
        (* Name-typed rdata must hold a wire-form name to re-encode
           byte-identically; TXT rdata is free-form. *)
        match rtype with
        | Packet.CNAME | Packet.NS ->
            let* target = name_gen in
            pure (Name.encode target)
        | _ -> string_size ~gen:(char_range '\x00' '\xff') (int_range 0 16)
    in
    pure { Packet.rname; rtype; ttl; rdata })

let packet_gen =
  QCheck.Gen.(
    let* id = int_bound 0xFFFF in
    let* qname = name_gen in
    let* answers = list_size (int_range 0 4) rr_gen in
    let* additionals = list_size (int_range 0 2) rr_gen in
    let q = Packet.query ~id qname Packet.A in
    pure
      { (Packet.response ~query:q answers) with Packet.additionals })

let packet_arb =
  QCheck.make ~print:(fun p -> Format.asprintf "%a" Packet.pp p) packet_gen

let prop_roundtrip_compressed =
  QCheck.Test.make ~name:"packet encode/decode round-trip (compressed)"
    ~count:500 packet_arb (fun p ->
      match Packet.decode (Packet.encode ~compress:true p) with
      | Ok d -> d = p
      | Error _ -> false)

let prop_roundtrip_uncompressed =
  QCheck.Test.make ~name:"packet encode/decode round-trip (uncompressed)"
    ~count:500 packet_arb (fun p ->
      match Packet.decode (Packet.encode ~compress:false p) with
      | Ok d -> d = p
      | Error _ -> false)

let prop_encoders_agree =
  QCheck.Test.make ~name:"arena encode = legacy encode" ~count:500 packet_arb
    (fun p ->
      Legacy.encode ~compress:true p = Packet.encode ~compress:true p
      && Legacy.encode ~compress:false p = Packet.encode ~compress:false p)

let prop_name_roundtrip =
  QCheck.Test.make ~name:"name encode/decode round-trip" ~count:500
    (QCheck.make name_gen) (fun labels ->
      let wire = header12 ^ Name.encode labels in
      match Name.decode wire 12 with
      | Ok (d, used) -> d = labels && used = String.length (Name.encode labels)
      | Error _ -> false)

(* --- codec differential ---------------------------------------------- *)

let test_differential_pool_clean () =
  List.iter
    (fun wire ->
      match Fuzz.Differential.check wire with
      | [], _ -> ()
      | d :: _, _ ->
          Alcotest.failf "pool divergence at stage %s: %s vs %s"
            d.Fuzz.Differential.stage d.Fuzz.Differential.legacy
            d.Fuzz.Differential.zero_copy)
    (Fuzz.Differential.seed_pool ())

let test_differential_run () =
  let r = Fuzz.Differential.run ~seed:1 ~execs:10_000 () in
  check_int "no divergences in 10k mutants" 0 r.Fuzz.Differential.divergent;
  check_bool "both outcomes exercised" true
    (r.Fuzz.Differential.decode_ok > 100
    && r.Fuzz.Differential.decode_err > 100);
  (* Determinism: the JSON report is byte-identical across runs. *)
  let r2 = Fuzz.Differential.run ~seed:1 ~execs:10_000 () in
  check_string "deterministic report"
    (Fuzz.Differential.report_json r)
    (Fuzz.Differential.report_json r2)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wire"
    [
      ( "name totality",
        [
          Alcotest.test_case "empty labels rejected" `Quick
            test_of_string_rejects_empty_labels;
          Alcotest.test_case "oversized labels rejected" `Quick
            test_of_string_rejects_oversized_labels;
          Alcotest.test_case "trailing dot" `Quick test_of_string_trailing_dot;
        ] );
      ( "count validation",
        [
          Alcotest.test_case "wrapped counts rejected" `Quick
            test_encode_rejects_wrapped_counts;
          Alcotest.test_case "encode_udp truncates honestly" `Quick
            test_encode_udp_truncates_honestly;
        ] );
      ( "pointer discipline",
        [
          Alcotest.test_case "forward pointer rejected" `Quick
            test_strict_rejects_forward_pointer;
          Alcotest.test_case "self pointer rejected" `Quick
            test_strict_rejects_self_pointer;
        ] );
      ( "view",
        [
          Alcotest.test_case "accessors" `Quick test_view_accessors;
          Alcotest.test_case "matches materializing decode" `Quick
            test_view_matches_decode;
        ] );
      ( "arena",
        [
          Alcotest.test_case "matches legacy buffer" `Quick
            test_arena_matches_legacy_buffer;
          Alcotest.test_case "no self-match past write position" `Quick
            test_arena_no_self_match;
          Alcotest.test_case "reuse resets completely" `Quick test_arena_reuse;
        ] );
      ( "properties",
        [
          qt prop_roundtrip_compressed;
          qt prop_roundtrip_uncompressed;
          qt prop_encoders_agree;
          qt prop_name_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "seed pool clean" `Quick
            test_differential_pool_clean;
          Alcotest.test_case "10k mutants, zero divergences" `Quick
            test_differential_run;
        ] );
    ]
